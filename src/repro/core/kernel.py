"""The slot-table placement kernel: memoized per-version placement and
vectorised bulk locate.

The whole-cluster sweeps that dominate the paper's evaluation — resize
planning, Algorithm 2 re-integration scans, fsck, distribution
analysis, trace replay — all re-evaluate Algorithm 1 for every object.
But for a *fixed* membership version the placement of a key depends
only on its successor slot (the first vnode at or after ``hash(key)``):
every key landing in the same arc walks the identical server sequence.
There are only V vnode slots, so the placement of an entire version is
a table of V rows, computed lazily by running the existing reference
walk once per slot.

Two access paths share the table:

* scalar ``lookup(slot)`` — one dict/array access once the slot is
  filled; the :class:`~repro.core.elastic.ElasticConsistentHash` facade
  adds an oid→slot cache on top, so a repeated ``locate`` never touches
  the ring again;
* vectorised ``gather(slots)`` — fill the missing slots, then one
  fancy-index produces a compact :class:`BulkPlacement` (server-index
  matrix plus degraded / offloaded bitmasks) for a whole key array.

Invalidation rules
------------------
* **Ring membership** (``add_server`` / ``remove_server`` /
  ``set_weight``, e.g. a dynamic-primary re-layout) renumbers the vnode
  slots: the ring's ``generation`` counter advances and the kernel
  drops *every* table on the next access.
* **Resizes** (``set_active`` and friends) never mutate the ring — the
  elastic design's point — so existing tables stay valid; the new
  version simply keys a new table.  Membership tables are immutable,
  which is what makes per-version memoization sound.
* Role changes without a weight change (possible under the *uniform*
  layout) are covered by an explicit :meth:`PlacementKernel.invalidate`
  hook called by the re-layout path.
"""

from __future__ import annotations

from collections import OrderedDict
from dataclasses import dataclass
from typing import Callable, Dict, Hashable, List, Optional, Tuple, Union

import numpy as np

from repro.core.placement import (
    ChainMode,
    PlacementResult,
    place_original_from_slot,
    place_primary_from_slot,
)
from repro.hashring.ring import HashRing
from repro.obs.runtime import OBS

__all__ = ["BulkPlacement", "SlotPlacementTable", "PlacementKernel"]

Predicate = Callable[[Hashable], bool]

_FILLED = np.uint8(1)
_DEGRADED = np.uint8(2)
_SKIPPED = np.uint8(4)
_ERROR = np.uint8(8)

#: Cap on the facade-level oid→slot cache (see :class:`PlacementKernel`).
_SLOT_CACHE_MAX = 1 << 20

#: Sentinel for "no table cached yet" (``None`` is a legal version key).
_NO_KEY = object()


@dataclass(frozen=True)
class BulkPlacement:
    """Placements of N keys as compact arrays (no per-object objects).

    Attributes
    ----------
    servers:
        ``(N, r)`` integer array of server ids in replica order; rows
        of ``-1`` where the key was not placeable (see :attr:`ok`).
    degraded:
        ``(N,)`` bool — the §III-B special case fired for this key.
    skipped_inactive:
        ``(N,)`` bool — an inactive server was walked past (the write
        would be *offloaded* and dirty-tracked).
    ok:
        ``(N,)`` bool — False where the scalar path would have raised
        ``LookupError`` (fewer than r eligible servers).
    """

    servers: np.ndarray
    degraded: np.ndarray
    skipped_inactive: np.ndarray
    ok: np.ndarray

    def __len__(self) -> int:
        return int(self.servers.shape[0])

    @property
    def all_ok(self) -> bool:
        return bool(self.ok.all())

    def rows(self) -> List[List[int]]:
        """Server rows as plain Python ints (cheap C-level conversion)."""
        return self.servers.tolist()

    def result(self, i: int) -> PlacementResult:
        """Row *i* re-materialised as a :class:`PlacementResult`."""
        if not self.ok[i]:
            raise LookupError(f"key at index {i} not placeable")
        return PlacementResult(
            tuple(self.servers[i].tolist()),
            degraded=bool(self.degraded[i]),
            skipped_inactive=bool(self.skipped_inactive[i]),
        )


class SlotPlacementTable:
    """Per-slot placements for one (membership version, chain, r).

    Rows fill lazily: the first lookup of a slot runs the reference
    walk (``place_*_from_slot``) and caches both the frozen
    :class:`PlacementResult` (scalar path) and its array row (bulk
    path).  A slot whose walk raises ``LookupError`` caches the error
    message instead, so the failure is as cheap — and as deterministic
    — as a success.
    """

    def __init__(self, ring: HashRing,
                 compute: Callable[[int], PlacementResult],
                 r: int) -> None:
        ring._rebuild_if_dirty()
        self._ring = ring
        self._compute = compute
        self._r = r
        nslots = ring._positions.size
        self._servers = np.full((nslots, r), -1, dtype=np.intp)
        self._flags = np.zeros(nslots, dtype=np.uint8)
        #: Per-slot cache: PlacementResult | str (error message) | None.
        self._results: List[Union[PlacementResult, str, None]] = \
            [None] * nslots
        self._sid_index: Dict[Hashable, int] = {
            sid: i for i, sid in enumerate(ring._server_list)}
        self._server_ids = np.asarray(ring._server_list)

    # ------------------------------------------------------------------
    @property
    def num_slots(self) -> int:
        return len(self._results)

    @property
    def filled_slots(self) -> int:
        """Slots computed so far (tests + capacity accounting)."""
        return int(np.count_nonzero(self._flags & _FILLED))

    # ------------------------------------------------------------------
    def _fill_slot(self, slot: int) -> Union[PlacementResult, str]:
        try:
            res = self._compute(slot)
        except LookupError as exc:
            self._flags[slot] = _FILLED | _ERROR
            msg = str(exc)
            self._results[slot] = msg
            return msg
        flags = _FILLED
        if res.degraded:
            flags |= _DEGRADED
        if res.skipped_inactive:
            flags |= _SKIPPED
        self._servers[slot] = [self._sid_index[s] for s in res.servers]
        self._flags[slot] = flags
        self._results[slot] = res
        return res

    def lookup(self, slot: int) -> PlacementResult:
        """Placement of one slot (raising ``LookupError`` exactly where
        the reference walk would)."""
        res = self._results[slot]
        if res is None:
            res = self._fill_slot(slot)
        elif OBS.hot:
            OBS.metrics.inc("ring.table_hits")
        if type(res) is str:
            raise LookupError(res)
        return res

    def fill(self, slots: np.ndarray) -> int:
        """Ensure every slot in *slots* is computed; returns how many
        were already filled (table-hit accounting for the bulk path)."""
        filled = self._flags[slots] & _FILLED
        hits = int(np.count_nonzero(filled))
        if hits < slots.size:
            for slot in np.unique(slots[filled == 0]):
                self._fill_slot(int(slot))
        return hits

    def gather(self, slots: np.ndarray) -> BulkPlacement:
        """Vectorised placement of a slot array."""
        hits = self.fill(slots)
        if OBS.hot and hits:
            OBS.metrics.inc("ring.table_hits", hits)
        idx = self._servers[slots]
        flags = self._flags[slots]
        ok = (flags & _ERROR) == 0
        ids = self._server_ids[np.clip(idx, 0, None)]
        if ids.dtype.kind in "iu":
            ids = ids.copy()
            ids[idx < 0] = -1
        return BulkPlacement(
            servers=ids,
            degraded=(flags & _DEGRADED) != 0,
            skipped_inactive=(flags & _SKIPPED) != 0,
            ok=ok,
        )


class PlacementKernel:
    """Slot tables for every membership version of one ring, plus an
    oid→slot cache for the scalar hot path.

    Tables are keyed by the caller's version key (``None`` for an
    unversioned ring, e.g. the original-CH baseline) and kept in a
    small LRU — trace replays can touch hundreds of versions but only
    the recent few stay hot.  All state is dropped when the ring's
    membership generation advances.
    """

    def __init__(
        self,
        ring: HashRing,
        replicas: int,
        placement_mode: str = "primary",
        chain: ChainMode = "walk",
        is_primary: Optional[Predicate] = None,
        max_tables: int = 16,
    ) -> None:
        if placement_mode not in ("primary", "original"):
            raise ValueError(f"unknown placement_mode: {placement_mode!r}")
        if placement_mode == "primary" and is_primary is None:
            raise ValueError("primary placement needs an is_primary oracle")
        self._ring = ring
        self._replicas = replicas
        self._mode = placement_mode
        self._chain: ChainMode = chain
        self._is_primary = is_primary
        self._max_tables = max_tables
        self._tables: "OrderedDict[Hashable, SlotPlacementTable]" = \
            OrderedDict()
        self._slot_cache: Dict[Hashable, int] = {}
        self._generation = ring.generation
        # One-entry fast path over the LRU: repeated locates against a
        # settled version skip the OrderedDict bookkeeping entirely.
        self._last_key: Hashable = _NO_KEY
        self._last_tbl: Optional[SlotPlacementTable] = None

    # ------------------------------------------------------------------
    def invalidate(self) -> None:
        """Drop every memoized table (role/layout change and
        crash/repair hook)."""
        self._tables.clear()
        self._slot_cache.clear()
        self._last_key = _NO_KEY
        self._last_tbl = None
        self._generation = self._ring.generation
        OBS.metrics.inc("kernel.invalidations")

    def _check_generation(self) -> None:
        if self._ring.generation != self._generation:
            self.invalidate()

    @property
    def cached_tables(self) -> Tuple[Hashable, ...]:
        """Version keys currently memoized (oldest first) — for tests
        and capacity introspection."""
        return tuple(self._tables)

    # ------------------------------------------------------------------
    def table(self, key: Hashable,
              is_active: Optional[Predicate]) -> SlotPlacementTable:
        """The (lazily created) slot table for one membership *key*.

        *is_active* must be the pure membership predicate belonging to
        *key*; it is captured at table creation, which is sound because
        membership tables are immutable.
        """
        if (key == self._last_key
                and self._ring.generation == self._generation):
            # Already the most-recent LRU entry: no move_to_end needed.
            return self._last_tbl  # type: ignore[return-value]
        self._check_generation()
        tbl = self._tables.get(key)
        if tbl is None:
            ring, r = self._ring, self._replicas
            if self._mode == "original":
                def compute(slot: int,
                            _act: Optional[Predicate] = is_active
                            ) -> PlacementResult:
                    return place_original_from_slot(ring, slot, r, _act)
            else:
                is_primary, chain = self._is_primary, self._chain

                def compute(slot: int,
                            _act: Optional[Predicate] = is_active
                            ) -> PlacementResult:
                    return place_primary_from_slot(
                        ring, slot, r, is_primary, _act, chain)

            tbl = SlotPlacementTable(ring, compute, r)
            self._tables[key] = tbl
            if len(self._tables) > self._max_tables:
                self._tables.popitem(last=False)
        else:
            self._tables.move_to_end(key)
        self._last_key, self._last_tbl = key, tbl
        return tbl

    # ------------------------------------------------------------------
    def slot_of(self, oid: Hashable) -> int:
        """Successor slot of *oid*, memoized per ring generation.

        The cache is what turns a repeated scalar ``locate`` into two
        dict hits: oid→slot here, slot→result in the table.
        """
        slot = self._slot_cache.get(oid)
        if slot is None:
            self._check_generation()
            slot = self._ring.successor_slot(self._ring.key_position(oid))
            if len(self._slot_cache) >= _SLOT_CACHE_MAX:
                self._slot_cache.clear()
            self._slot_cache[oid] = slot
        return slot
