"""Dirty-data tracking (§III-E-2, Figure 6).

An object is *dirty* when it was written while the cluster was not at
full power: some replica targets may have been skipped (offloaded), so
the object may need re-integration when servers come back.  The dirty
table records ``(OID, version)`` pairs — the version is the epoch the
object was **last written** in — and is consumed FIFO by Algorithm 2,
"version ascending and OID ascending if the version is the same".

As in the paper's implementation (§IV), the table lives in a Redis-like
key-value store as LIST values: entries enter with RPUSH, are peeked
with LRANGE during non-full-power re-integration, and are removed with
LPOP/LREM once re-integrated into a full-power version.  The store is
sharded across servers (§III-E-2) by hashing the OID, so each shard's
list stays version-sorted automatically (versions only grow) and the
global order is recovered with a sort-merge at fetch time.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterator, List, Optional, Set, Tuple

from repro.kvstore.sharded import ShardedKVStore
from repro.obs.runtime import OBS

__all__ = ["DirtyEntry", "DirtyTable"]

_LIST_KEY = "dirty"


@dataclass(frozen=True, order=True)
class DirtyEntry:
    """One dirty-table row.  Ordered by (version, oid) — exactly the
    order ``fetch_dirty_entry`` consumes (§III-E-3)."""

    version: int
    oid: int

    def __repr__(self) -> str:  # matches Figure 6's (OID, Version) rows
        return f"DirtyEntry(oid={self.oid}, version={self.version})"


class DirtyTable:
    """The distributed dirty table.

    Parameters
    ----------
    kv:
        Backing sharded store; a private 4-shard store is created when
        omitted.
    dedupe:
        When True (default), re-inserting an ``(oid, version)`` pair
        that is already present is a no-op — re-writing an object in
        the same epoch does not need a second re-integration pass.
    """

    def __init__(self, kv: Optional[ShardedKVStore] = None,
                 dedupe: bool = True) -> None:
        self._kv = kv if kv is not None else ShardedKVStore(
            [f"shard-{i}" for i in range(4)])
        self._dedupe = dedupe
        self._index: Set[Tuple[int, int]] = set()
        self._last_version: int = 0
        # Pre-bound: insert is on the per-write hot path.
        self._insert_counter = OBS.metrics.counter("dirty.inserts")

    # ------------------------------------------------------------------
    def _shard_key(self, oid: int) -> str:
        """Routing key: the shard is chosen by OID so lookups for one
        object always hit one shard."""
        return f"oid:{oid}"

    def _store_of(self, oid: int):
        return self._kv.store_for(self._shard_key(oid))

    # ------------------------------------------------------------------
    def insert(self, oid: int, version: int) -> bool:
        """Record that *oid* was written (dirty) in *version*.

        Returns whether a new entry was actually appended.  Versions
        must be non-decreasing across inserts — the logging component
        tags writes with the *current* version, which only grows — and
        that monotonicity is what keeps every shard list sorted.
        """
        if version < self._last_version and self._dedupe:
            # Tolerated for dedupe-off test scenarios; with dedupe on,
            # an out-of-order version would silently break fetch order.
            raise ValueError(
                f"dirty insert version went backwards: {version} < "
                f"{self._last_version}")
        entry = DirtyEntry(version=version, oid=oid)
        if self._dedupe and (version, oid) in self._index:
            return False
        self._store_of(oid).rpush(_LIST_KEY, entry)
        self._index.add((version, oid))
        self._last_version = max(self._last_version, version)
        self._insert_counter.inc()
        if OBS.bus.active:
            OBS.bus.emit("dirty.insert", oid=oid, version=version)
        return True

    def contains(self, oid: int, version: int) -> bool:
        return (version, oid) in self._index

    def contains_oid(self, oid: int) -> bool:
        return any(o == oid for (_v, o) in self._index)

    def __len__(self) -> int:
        return sum(self._kv.shard(sid).llen(_LIST_KEY)
                   for sid in self._kv.shard_ids)

    def is_empty(self) -> bool:
        """Algorithm 2's ``isempty_dirty_table()``."""
        return len(self) == 0

    # ------------------------------------------------------------------
    def entries(self) -> List[DirtyEntry]:
        """Snapshot of all entries in global fetch order
        (version ascending, OID ascending within a version).

        This is the LRANGE path: non-destructive, used while the
        current version is not full power."""
        out: List[DirtyEntry] = []
        for sid in self._kv.shard_ids:
            out.extend(self._kv.shard(sid).lrange(_LIST_KEY, 0, -1))
        out.sort()
        OBS.metrics.inc("dirty.fetches")
        OBS.metrics.inc("dirty.fetched_entries", len(out))
        return out

    def __iter__(self) -> Iterator[DirtyEntry]:
        return iter(self.entries())

    def head(self) -> Optional[DirtyEntry]:
        """The globally-first entry, or None when empty."""
        best: Optional[DirtyEntry] = None
        for sid in self._kv.shard_ids:
            e = self._kv.shard(sid).lindex(_LIST_KEY, 0)
            if e is not None and (best is None or e < best):
                best = e
        return best

    # ------------------------------------------------------------------
    def remove(self, entry: DirtyEntry) -> bool:
        """Remove one specific entry (the LPOP/LREM path, taken when
        the entry has been re-integrated into a full-power version)."""
        store = self._store_of(entry.oid)
        if store.lindex(_LIST_KEY, 0) == entry:
            store.lpop(_LIST_KEY)
            removed = 1
        else:
            removed = store.lrem(_LIST_KEY, 1, entry)
        if removed:
            self._index.discard((entry.version, entry.oid))
            OBS.metrics.inc("dirty.removes")
            if OBS.bus.active:
                OBS.bus.emit("dirty.remove", oid=entry.oid,
                             version=entry.version)
        return bool(removed)

    def remove_oid(self, oid: int) -> int:
        """Remove every entry for *oid* (used when an object is deleted
        or when a newer write supersedes all older dirty entries).
        Returns the number of entries removed."""
        store = self._store_of(oid)
        victims = [e for e in store.lrange(_LIST_KEY, 0, -1) if e.oid == oid]
        removed = 0
        for e in victims:
            if store.lrem(_LIST_KEY, 1, e):
                removed += 1
                self._index.discard((e.version, e.oid))
                OBS.metrics.inc("dirty.removes")
                if OBS.bus.active:
                    OBS.bus.emit("dirty.remove", oid=e.oid,
                                 version=e.version)
        return removed

    def clear(self) -> None:
        for sid in self._kv.shard_ids:
            self._kv.shard(sid).delete(_LIST_KEY)
        self._index.clear()

    # ------------------------------------------------------------------
    def versions_present(self) -> List[int]:
        """Distinct versions with at least one entry, ascending —
        a Figure-6-style summary used by tests and examples."""
        return sorted({v for (v, _o) in self._index})

    def entries_for_version(self, version: int) -> List[DirtyEntry]:
        return [e for e in self.entries() if e.version == version]
