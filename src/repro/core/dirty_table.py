"""Dirty-data tracking (§III-E-2, Figure 6).

An object is *dirty* when it was written while the cluster was not at
full power: some replica targets may have been skipped (offloaded), so
the object may need re-integration when servers come back.  The dirty
table records ``(OID, version)`` pairs — the version is the epoch the
object was **last written** in — and is consumed FIFO by Algorithm 2,
"version ascending and OID ascending if the version is the same".

As in the paper's implementation (§IV), the table lives in a Redis-like
key-value store as LIST values: entries enter with RPUSH, are peeked
with LRANGE during non-full-power re-integration, and are removed with
LPOP/LREM once re-integrated into a full-power version.  Each object's
entries live under a per-OID list key (``oid:<oid>``), routed to its
shard by hashing the OID (§III-E-2); every per-OID list stays
version-sorted automatically (versions only grow) and the global order
is recovered with a sort-merge at fetch time.  Because every key is
routed, the table survives shard-membership changes unharmed:
:meth:`~repro.kvstore.sharded.ShardedKVStore.add_shard` /
``remove_shard`` migrate the remapped lists wholesale and the routed
accessors simply follow the new ring.

The table is backend-agnostic across the repo's two Redis-like stores:
the single-copy :class:`~repro.kvstore.sharded.ShardedKVStore` (the
default) and the fault-tolerant
:class:`~repro.kvstore.replicated.ReplicatedKVStore` — the chaos
harness runs it on the latter so crashed shards lose nothing.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import (
    TYPE_CHECKING,
    Iterator,
    List,
    Optional,
    Set,
    Tuple,
    Union,
)

from repro.kvstore.sharded import ShardedKVStore
from repro.obs.runtime import OBS

if TYPE_CHECKING:  # hint-only: avoids a kvstore <-> core import cycle
    from repro.kvstore.replicated import ReplicatedKVStore

__all__ = ["DirtyEntry", "DirtyTable"]

#: Per-OID list keys: ``oid:<oid>`` routes all of one object's entries
#: to a single shard.
_KEY_PREFIX = "oid:"


@dataclass(frozen=True, order=True)
class DirtyEntry:
    """One dirty-table row.  Ordered by (version, oid) — exactly the
    order ``fetch_dirty_entry`` consumes (§III-E-3)."""

    version: int
    oid: int

    def __repr__(self) -> str:  # matches Figure 6's (OID, Version) rows
        return f"DirtyEntry(oid={self.oid}, version={self.version})"


class DirtyTable:
    """The distributed dirty table.

    Parameters
    ----------
    kv:
        Backing Redis-like store — sharded (single-copy) or
        replicated; a private 4-shard store is created when omitted.
    dedupe:
        When True (default), re-inserting an ``(oid, version)`` pair
        that is already present is a no-op — re-writing an object in
        the same epoch does not need a second re-integration pass.
    """

    def __init__(self,
                 kv: Optional[Union[ShardedKVStore,
                                    "ReplicatedKVStore"]] = None,
                 dedupe: bool = True) -> None:
        self._kv = kv if kv is not None else ShardedKVStore(
            [f"shard-{i}" for i in range(4)])
        self._dedupe = dedupe
        self._index: Set[Tuple[int, int]] = set()
        self._last_version: int = 0
        self._count: int = 0  # O(1) __len__; mirrors the list lengths
        # Pre-bound: insert is on the per-write hot path.
        self._insert_counter = OBS.metrics.counter("dirty.inserts")

    # ------------------------------------------------------------------
    def _key(self, oid: int) -> str:
        """The per-OID list key; routing by OID keeps all of one
        object's entries on a single shard."""
        return f"{_KEY_PREFIX}{oid}"

    def _oid_keys(self) -> Iterator[str]:
        """Every per-OID list key, via the backend's whole-keyspace
        fan-out (deterministically ordered on both backends)."""
        for key in self._kv.keys():
            if key.startswith(_KEY_PREFIX):
                yield key

    # ------------------------------------------------------------------
    def insert(self, oid: int, version: int) -> bool:
        """Record that *oid* was written (dirty) in *version*.

        Returns whether a new entry was actually appended.  Versions
        must be non-decreasing across inserts — the logging component
        tags writes with the *current* version, which only grows — and
        that monotonicity is what keeps every shard list sorted.
        """
        if version < self._last_version and self._dedupe:
            # Tolerated for dedupe-off test scenarios; with dedupe on,
            # an out-of-order version would silently break fetch order.
            raise ValueError(
                f"dirty insert version went backwards: {version} < "
                f"{self._last_version}")
        entry = DirtyEntry(version=version, oid=oid)
        if self._dedupe and (version, oid) in self._index:
            return False
        self._kv.rpush(self._key(oid), entry)
        self._count += 1
        self._index.add((version, oid))
        self._last_version = max(self._last_version, version)
        self._insert_counter.inc()
        if OBS.bus.active:
            OBS.bus.emit("dirty.insert", oid=oid, version=version)
        return True

    def contains(self, oid: int, version: int) -> bool:
        return (version, oid) in self._index

    def contains_oid(self, oid: int) -> bool:
        return any(o == oid for (_v, o) in self._index)

    def __len__(self) -> int:
        return self._count

    def is_empty(self) -> bool:
        """Algorithm 2's ``isempty_dirty_table()``."""
        return len(self) == 0

    # ------------------------------------------------------------------
    def entries(self) -> List[DirtyEntry]:
        """Snapshot of all entries in global fetch order
        (version ascending, OID ascending within a version).

        This is the LRANGE path: non-destructive, used while the
        current version is not full power."""
        out: List[DirtyEntry] = []
        for key in self._oid_keys():
            out.extend(self._kv.lrange(key, 0, -1))
        out.sort()
        OBS.metrics.inc("dirty.fetches")
        OBS.metrics.inc("dirty.fetched_entries", len(out))
        return out

    def __iter__(self) -> Iterator[DirtyEntry]:
        return iter(self.entries())

    def head(self) -> Optional[DirtyEntry]:
        """The globally-first entry, or None when empty."""
        best: Optional[DirtyEntry] = None
        for key in self._oid_keys():
            e = self._kv.lindex(key, 0)
            if e is not None and (best is None or e < best):
                best = e
        return best

    # ------------------------------------------------------------------
    def remove(self, entry: DirtyEntry) -> bool:
        """Remove one specific entry (the LPOP/LREM path, taken when
        the entry has been re-integrated into a full-power version)."""
        key = self._key(entry.oid)
        if self._kv.lindex(key, 0) == entry:
            self._kv.lpop(key)
            removed = 1
        else:
            removed = self._kv.lrem(key, 1, entry)
        if removed:
            self._count -= removed
            self._index.discard((entry.version, entry.oid))
            OBS.metrics.inc("dirty.removes")
            if OBS.bus.active:
                OBS.bus.emit("dirty.remove", oid=entry.oid,
                             version=entry.version)
        return bool(removed)

    def remove_oid(self, oid: int) -> int:
        """Remove every entry for *oid* (used when an object is deleted
        or when a newer write supersedes all older dirty entries).
        Returns the number of entries removed."""
        key = self._key(oid)
        victims = self._kv.lrange(key, 0, -1)
        self._kv.delete(key)
        self._count -= len(victims)
        for e in victims:
            self._index.discard((e.version, e.oid))
            OBS.metrics.inc("dirty.removes")
            if OBS.bus.active:
                OBS.bus.emit("dirty.remove", oid=e.oid,
                             version=e.version)
        return len(victims)

    def clear(self) -> None:
        for key in list(self._oid_keys()):
            self._kv.delete(key)
        self._index.clear()
        self._count = 0

    # ------------------------------------------------------------------
    def versions_present(self) -> List[int]:
        """Distinct versions with at least one entry, ascending —
        a Figure-6-style summary used by tests and examples."""
        return sorted({v for (v, _o) in self._index})

    def entries_for_version(self, version: int) -> List[DirtyEntry]:
        return [e for e in self.entries() if e.version == version]
