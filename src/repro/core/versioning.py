"""Cluster membership versioning (§III-E-1).

Every resize creates a new *version* (Sheepdog/Ceph call it an epoch):
an immutable snapshot of which servers are on.  Placement is a pure
function of (object id, version), so given the version an object was
last written in, its replica locations are recomputable forever — the
property Algorithm 2's ``locate_ser(OID, Ver)`` relies on.

Servers are identified by their *rank* in the expansion chain (1-based,
§III-B): rank 1..p are primaries and are always on; secondaries power
off from the highest rank downward and power on from the lowest
inactive rank upward, so the active set of any version is always a
prefix ``{1..k}`` of the chain.  (The data structures do not enforce
prefix-ness — :class:`MembershipTable` accepts any active set, and the
tests exercise non-prefix sets — but :class:`repro.core.elastic`
resizes along the chain as the paper prescribes.)
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, FrozenSet, Iterator, List, Sequence, Tuple

from repro.obs.runtime import OBS

__all__ = ["MembershipTable", "VersionHistory"]


@dataclass(frozen=True)
class MembershipTable:
    """The state of every server in one version (Figure 6's
    "Membership Table").

    Attributes
    ----------
    version:
        Monotonically increasing epoch number (first version is 1).
    ranks:
        All server ranks in the cluster, ascending.
    active:
        Ranks that are powered on in this version.
    """

    version: int
    ranks: Tuple[int, ...]
    active: FrozenSet[int]

    def __post_init__(self) -> None:
        if self.version < 1:
            raise ValueError("versions start at 1")
        if tuple(sorted(self.ranks)) != self.ranks:
            raise ValueError("ranks must be sorted ascending")
        if len(set(self.ranks)) != len(self.ranks):
            raise ValueError("duplicate ranks")
        unknown = self.active - set(self.ranks)
        if unknown:
            raise ValueError(f"active ranks not in cluster: {sorted(unknown)}")

    # ------------------------------------------------------------------
    @property
    def num_servers(self) -> int:
        return len(self.ranks)

    @property
    def num_active(self) -> int:
        return len(self.active)

    @property
    def is_full_power(self) -> bool:
        """All servers on — the state in which dirty entries may be
        cleared (Algorithm 2, line 11)."""
        return len(self.active) == len(self.ranks)

    def is_active(self, rank: int) -> bool:
        return rank in self.active

    def active_ranks(self) -> List[int]:
        return sorted(self.active)

    def inactive_ranks(self) -> List[int]:
        return sorted(set(self.ranks) - self.active)

    # ------------------------------------------------------------------
    def with_active(self, active: Sequence[int], version: int) -> "MembershipTable":
        """A successor table with the given active set."""
        return MembershipTable(version=version, ranks=self.ranks,
                               active=frozenset(active))

    def states(self) -> Dict[int, str]:
        """``{rank: "on"|"off"}`` — the rendering used in Figure 6."""
        return {r: ("on" if r in self.active else "off") for r in self.ranks}


class VersionHistory:
    """Append-only sequence of membership tables.

    The history is the lookup structure behind ``locate_ser(OID, Ver)``:
    it never discards old versions, because a dirty entry may reference
    an arbitrarily old epoch (§III-E-1: "no matter how many versions
    have passed").
    """

    def __init__(self, ranks: Sequence[int],
                 initially_active: Sequence[int] | None = None) -> None:
        ranks_t = tuple(sorted(ranks))
        if not ranks_t:
            raise ValueError("cluster must have at least one server")
        active = frozenset(initially_active if initially_active is not None
                           else ranks_t)
        self._tables: List[MembershipTable] = [
            MembershipTable(version=1, ranks=ranks_t, active=active)
        ]

    # ------------------------------------------------------------------
    @property
    def current(self) -> MembershipTable:
        return self._tables[-1]

    @property
    def current_version(self) -> int:
        return self._tables[-1].version

    def get(self, version: int) -> MembershipTable:
        """The membership table of an arbitrary historical version."""
        if not 1 <= version <= len(self._tables):
            raise KeyError(f"unknown version: {version}")
        return self._tables[version - 1]

    def __len__(self) -> int:
        return len(self._tables)

    def __iter__(self) -> Iterator[MembershipTable]:
        return iter(self._tables)

    # ------------------------------------------------------------------
    def advance(self, active: Sequence[int]) -> MembershipTable:
        """Create the next version with the given active set.

        A resize that does not change the active set is rejected — a
        version must describe a distinct membership state, and silent
        no-op versions would make Algorithm 2's ``Curr_Ver > Last_Ver``
        restart fire spuriously.
        """
        new_active = frozenset(active)
        cur = self.current
        if new_active == cur.active:
            raise ValueError("active set unchanged; refusing no-op version")
        table = cur.with_active(new_active, version=cur.version + 1)
        self._tables.append(table)
        OBS.metrics.inc("versions.created")
        if OBS.bus.active:
            OBS.bus.emit("version.advance", version=table.version,
                         active=table.num_active,
                         full_power=table.is_full_power)
        return table

    def num_active(self, version: int) -> int:
        """Algorithm 2's ``num_ser(Ver)`` helper."""
        return self.get(version).num_active
