"""Dynamic primary count — the SpringFS/Sierra extension (§I, §VI).

The paper notes that "since the small number of primary servers limits
the write performance, several recent studies propose to dynamically
change the number of primary servers to balance the write performance
and elasticity" — and cites exactly this as the design space Rabbit
and SpringFS explore.  This module brings that capability to elastic
consistent hashing: re-designating how many ranks are primaries and
re-weighting the ring to the new equal-work curve.

A primary-count change is a *re-layout*: weights move, roles move, so
placements move, so data moves.  Two properties keep it tractable:

* vnode position streams are prefix-stable (a weight change only adds
  or removes the tail of a server's vnode list), so most of the ring
  is untouched and data movement is proportional to the weight delta;
* it is only legal in a quiescent state — full power, dirty table
  empty — because historical placements are computed against the
  *current* layout: re-layouting under outstanding dirty entries would
  corrupt ``locate(oid, old_version)``.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Iterable, Tuple

from repro.core.elastic import ElasticConsistentHash
from repro.core.layout import EqualWorkLayout

__all__ = ["PrimaryResizePlan", "plan_primary_resize", "apply_relayout"]


@dataclass(frozen=True)
class PrimaryResizePlan:
    """The consequences of changing p, measured on a sample."""

    old_p: int
    new_p: int
    #: {rank: (old_weight, new_weight)} for ranks whose weight changes.
    weight_changes: Dict[int, Tuple[int, int]]
    #: Fraction of sampled objects whose placement changes.
    moved_fraction: float
    #: Minimum power state before/after (the elasticity side).
    old_min_active: int
    new_min_active: int


def _layout_for(ech: ElasticConsistentHash, new_p: int) -> EqualWorkLayout:
    if not 1 <= new_p <= ech.n:
        raise ValueError(f"primary count {new_p} out of range 1..{ech.n}")
    if ech.layout_mode == "uniform":
        return EqualWorkLayout.uniform(ech.n, ech.replicas,
                                       ech.layout.B, new_p)
    return EqualWorkLayout.create(ech.n, ech.replicas, ech.layout.B,
                                  new_p)


def plan_primary_resize(ech: ElasticConsistentHash, new_p: int,
                        sample_oids: Iterable[int] = range(2_000),
                        ) -> PrimaryResizePlan:
    """Measure what changing to *new_p* primaries would do — without
    mutating anything.

    Placement movement is measured by re-running the sample against a
    scratch facade with the new layout (cheap: one ring build).
    """
    new_layout = _layout_for(ech, new_p)
    scratch = ElasticConsistentHash(
        n=ech.n, replicas=ech.replicas, B=ech.layout.B, p=new_p,
        chain=ech.chain, layout_mode=ech.layout_mode,
        placement_mode=ech.placement_mode)

    moved = 0
    total = 0
    for oid in sample_oids:
        total += 1
        if (set(ech.locate(oid).servers)
                != set(scratch.locate(oid).servers)):
            moved += 1

    changes = {
        rank: (ech.layout.weight_of(rank), new_layout.weight_of(rank))
        for rank in ech.layout.ranks
        if ech.layout.weight_of(rank) != new_layout.weight_of(rank)
    }
    return PrimaryResizePlan(
        old_p=ech.p,
        new_p=new_p,
        weight_changes=changes,
        moved_fraction=moved / total if total else 0.0,
        old_min_active=ech.layout.min_active,
        new_min_active=new_layout.min_active,
    )


def apply_relayout(ech: ElasticConsistentHash, new_p: int) -> None:
    """Switch the facade to *new_p* primaries (roles + ring weights).

    Requires quiescence: full power and an empty dirty table —
    otherwise historical placements (which Algorithm 2 still needs)
    would silently change under the outstanding entries.  The caller
    owns the data migration; :meth:`repro.cluster.cluster.
    ElasticCluster.set_primary_count` does both.
    """
    if not ech.is_full_power:
        raise RuntimeError("re-layout requires full power")
    if not ech.dirty.is_empty():
        raise RuntimeError(
            "re-layout requires an empty dirty table (run selective "
            "re-integration first)")
    new_layout = _layout_for(ech, new_p)
    for rank in new_layout.ranks:
        ech.ring.set_weight(rank, new_layout.weight_of(rank))
    ech.layout = new_layout
    # Roles changed even if no weight did (possible in uniform mode,
    # where the ring generation would not advance): the memoized slot
    # tables are placement-stale either way.
    ech.invalidate_placement_cache()
