"""The :class:`ElasticConsistentHash` facade — the paper's headline
object (§III-A).

It glues together the four mechanisms of the design:

* an equal-work-weighted hash ring (§III-C) over ranked servers, where
  ranks 1..p are primaries (§III-B) and the rank order is the
  expansion chain — the fixed order in which servers power on and off;
* primary-server placement (Algorithm 1) evaluated against *any*
  historical membership version, so the object is a pure
  ``locate(oid, version)`` oracle;
* membership versioning (§III-E-1): every resize appends an immutable
  :class:`~repro.core.versioning.MembershipTable`;
* dirty-data tracking (§III-E-2): writes issued while the cluster is
  not at full power are logged to the distributed dirty table.

The facade is *algorithmic* state only — which servers exist, which are
on, where objects belong.  Actual bytes live in
:class:`repro.cluster.cluster.ElasticCluster`, which drives this object.
"""

from __future__ import annotations

from time import perf_counter
from typing import Dict, Iterable, Optional, Sequence, Tuple

import numpy as np

from repro.core.dirty_table import DirtyTable
from repro.core.kernel import BulkPlacement, PlacementKernel
from repro.core.layout import EqualWorkLayout
from repro.core.placement import (
    ChainMode,
    PlacementResult,
    place_original,
    place_primary,
)
from repro.core.versioning import MembershipTable, VersionHistory
from repro.hashring.hashing import HashFunction, bulk_hash
from repro.hashring.ring import HashRing
from repro.kvstore.sharded import ShardedKVStore
from repro.obs.runtime import OBS

__all__ = ["ElasticConsistentHash"]


class ElasticConsistentHash:
    """Elastic consistent hashing over *n* ranked servers.

    Parameters
    ----------
    n:
        Cluster size.  Servers are the ranks ``1..n``.
    replicas:
        Replication factor *r* (paper evaluates r=2).
    B:
        Equal-work vnode budget (Equations 1-2).
    p:
        Primary count override; defaults to ``ceil(n / e^2)``.
    chain:
        Replica-walk chaining mode, see :mod:`repro.core.placement`.
    layout_mode:
        ``"equal-work"`` (the paper's design) or ``"uniform"``
        (original-CH weights; used where the paper isolates
        re-integration from layout effects, §V-A).
    placement_mode:
        ``"primary"`` (Algorithm 1) or ``"original"`` (plain successor
        placement that skips inactive servers).  Versioning, offload
        tracking and re-integration work identically in both — they
        only need ``locate`` to be a pure function of (oid, version).
    initially_active:
        Active ranks of version 1; defaults to full power.
    dirty_table:
        Backing table override (tests inject pre-populated ones).

    Examples
    --------
    >>> ech = ElasticConsistentHash(n=10, replicas=2)
    >>> ech.layout.p
    2
    >>> placement = ech.locate(oid=10010)
    >>> len(placement.servers)
    2
    >>> _ = ech.set_active(6)       # power down to 6 servers
    >>> ech.current_version
    2
    """

    def __init__(
        self,
        n: int,
        replicas: int = 2,
        B: int = 10_000,
        p: Optional[int] = None,
        chain: ChainMode = "walk",
        layout_mode: str = "equal-work",
        placement_mode: str = "primary",
        hash_method: HashFunction = "fnv1a",
        initially_active: Optional[Sequence[int]] = None,
        dirty_table: Optional[DirtyTable] = None,
    ) -> None:
        if layout_mode == "equal-work":
            self.layout = EqualWorkLayout.create(n, replicas, B, p)
        elif layout_mode == "uniform":
            self.layout = EqualWorkLayout.uniform(n, replicas, B, p)
        else:
            raise ValueError(f"unknown layout_mode: {layout_mode!r}")
        if placement_mode not in ("primary", "original"):
            raise ValueError(f"unknown placement_mode: {placement_mode!r}")
        self.layout_mode = layout_mode
        self.placement_mode = placement_mode
        self.replicas = replicas
        self.chain: ChainMode = chain

        self.ring = HashRing(hash_method)
        for rank in self.layout.ranks:
            self.ring.add_server(rank, weight=self.layout.weight_of(rank))

        #: Slot-table placement kernel: memoizes the per-slot walk for
        #: each membership version so a settled ``locate`` is a cache
        #: hit and ``locate_bulk`` is pure array work.  ``kernel_enabled
        #: = False`` forces every scalar locate down the reference walk
        #: (equivalence tests; the bulk API always uses the kernel).
        self.kernel_enabled = True
        self._kernel = PlacementKernel(
            self.ring, replicas,
            placement_mode=placement_mode,
            chain=chain,
            is_primary=self.is_primary,
        )

        self.history = VersionHistory(
            ranks=list(self.layout.ranks),
            initially_active=initially_active,
        )
        if any(not self.history.current.is_active(r)
               for r in self.layout.primary_ranks):
            raise ValueError("primary servers must be active in version 1")

        if dirty_table is None:
            # The table shards over the primaries — the servers that are
            # always on, so the table never loses a shard to a resize.
            shards = ShardedKVStore(
                [f"rank-{r}" for r in self.layout.primary_ranks])
            dirty_table = DirtyTable(shards)
        self.dirty = dirty_table

        #: Last version each object was written in — the object-header
        #: (version, dirty-bit) state of §III-E-2, kept here because
        #: placement-level staleness checks need it.
        self.last_written: Dict[int, int] = {}
        #: The version whose placement matches where the object's
        #: replicas physically are.  Writes set it to the write
        #: version; partial re-integrations advance it to their target
        #: version (Figure 6: after the v10 migration the header reads
        #: version 10 while the dirty entry still says 9, which is why
        #: the v11 pass migrates "from server 9", not from the v9
        #: locations).
        self.location_version: Dict[int, int] = {}
        #: Ranks that have *crashed* (as opposed to powered down):
        #: excluded from the expansion chain until repaired.  Failure
        #: handling is not in the paper's evaluation, but Sheepdog's
        #: recovery machinery — which the elastic design reuses — is
        #: "mainly utilized for tolerating failures" (§IV), so the
        #: facade models both exits from the active set.
        self.failed: set = set()

    # ------------------------------------------------------------------
    # roles and power state
    # ------------------------------------------------------------------
    @property
    def n(self) -> int:
        return self.layout.n

    @property
    def p(self) -> int:
        return self.layout.p

    def is_primary(self, rank: int) -> bool:
        return self.layout.is_primary(rank)

    def is_active(self, rank: int, version: Optional[int] = None) -> bool:
        table = (self.history.current if version is None
                 else self.history.get(version))
        return table.is_active(rank)

    @property
    def current_version(self) -> int:
        return self.history.current_version

    @property
    def membership(self) -> MembershipTable:
        return self.history.current

    @property
    def num_active(self) -> int:
        return self.history.current.num_active

    @property
    def is_full_power(self) -> bool:
        return self.history.current.is_full_power

    @property
    def min_active(self) -> int:
        """Smallest legal active count: the primaries (§III-C)."""
        return self.layout.p

    # ------------------------------------------------------------------
    # resizing along the expansion chain
    # ------------------------------------------------------------------
    def set_active(self, k: int) -> MembershipTable:
        """Resize to *k* active servers, clamped to ``[p, n]``, by
        powering the expansion chain: the active set is the first *k*
        non-failed ranks in chain order (the prefix ``{1..k}`` while
        nothing has crashed).

        Returns the new membership table (a no-op resize returns the
        current one without creating a version).
        """
        available = [r for r in self.layout.ranks if r not in self.failed]
        if not available:
            raise RuntimeError("every server has failed")
        k = max(min(self.min_active, len(available)),
                min(len(available), k))
        target = frozenset(available[:k])
        if target == self.history.current.active:
            return self.history.current
        return self.history.advance(sorted(target))

    # ------------------------------------------------------------------
    # failures (crashes, as opposed to planned power-downs)
    # ------------------------------------------------------------------
    def mark_failed(self, rank: int) -> MembershipTable:
        """A server crashed: remove it from the active set (new
        version) and exclude it from the chain until repaired.  Unlike
        a power-down, the caller must re-replicate the replicas it
        held — crashes lose data."""
        if rank in self.failed:
            raise ValueError(f"rank {rank} already failed")
        if rank not in set(self.layout.ranks):
            raise KeyError(f"unknown rank: {rank}")
        self.failed.add(rank)
        active = self.history.current.active - {rank}
        if not active:
            self.failed.discard(rank)
            raise RuntimeError("failure would empty the cluster")
        # Fault-driven membership change: drop every memoized slot
        # table.  Per-version keying alone would stay correct (tables
        # are immutable snapshots), but a crash invalidates the cached
        # oid→slot fast paths' assumption that the table set is settled
        # — re-deriving from the ring is the belt-and-braces guarantee
        # that no stale table survives a fault.
        self._kernel.invalidate()
        if active == self.history.current.active:
            return self.history.current   # was not active anyway
        return self.history.advance(sorted(active))

    def mark_repaired(self, rank: int) -> None:
        """The crashed server is back (empty); it rejoins the chain but
        stays powered off until the next :meth:`set_active` brings it
        in."""
        try:
            self.failed.remove(rank)
        except KeyError:
            raise ValueError(f"rank {rank} is not failed") from None
        # Mirror of mark_failed: restart/repair is a fault-driven
        # membership change too.
        self._kernel.invalidate()

    def power_off(self, count: int = 1) -> MembershipTable:
        """Turn off *count* servers from the top of the chain."""
        return self.set_active(self.num_active - count)

    def power_on(self, count: int = 1) -> MembershipTable:
        """Turn on *count* servers from the bottom of the inactive
        chain."""
        return self.set_active(self.num_active + count)

    # ------------------------------------------------------------------
    # placement
    # ------------------------------------------------------------------
    def locate(self, oid: int,
               version: Optional[int] = None) -> PlacementResult:
        """Replica locations of *oid* under *version* (default:
        current).  Pure: repeated calls with the same arguments return
        the same servers — Algorithm 2's ``locate_ser``."""
        prof = OBS.profiler
        if prof is not None:
            prof.push("kernel.locate")
        try:
            if OBS.hot:   # per-lookup profiling (--stats / perf runs)
                t0 = perf_counter()
                result = self._locate(oid, version)
                OBS.metrics.observe("perf.core.locate",
                                    perf_counter() - t0)
                OBS.metrics.inc("core.locates")
                return result
            return self._locate(oid, version)
        finally:
            if prof is not None:
                prof.pop()

    def _locate(self, oid: int,
                version: Optional[int] = None) -> PlacementResult:
        table = (self.history.current if version is None
                 else self.history.get(version))
        if not self.kernel_enabled:
            return self._locate_reference(oid, table)
        tbl = self._kernel.table(table.version, table.is_active)
        slot = self._kernel.slot_of(oid)
        try:
            return tbl.lookup(slot)
        except LookupError as exc:
            raise LookupError(f"{exc} (oid {oid!r})") from None

    def _locate_reference(self, oid: int,
                          table: MembershipTable) -> PlacementResult:
        """The original per-object ring walk, bypassing the slot
        table — the oracle the kernel's equivalence suite compares
        against."""
        if self.placement_mode == "original":
            return place_original(self.ring, oid, self.replicas,
                                  is_active=table.is_active)
        return place_primary(
            self.ring, oid, self.replicas,
            is_primary=self.is_primary,
            is_active=table.is_active,
            chain=self.chain,
        )

    def locate_bulk(self, oids: Iterable[int],
                    version: Optional[int] = None) -> BulkPlacement:
        """Vectorised :meth:`locate` over a whole key collection.

        Hashes all keys (``bulk_hash``), resolves successor slots in
        one ``searchsorted``, and gathers placements from the slot
        table — per-object Python work only for slots never seen
        before.  Returns compact arrays; see
        :class:`~repro.core.kernel.BulkPlacement`.
        """
        return self.locate_bulk_positions(
            bulk_hash(oids, self.ring.hash_method), version)

    def locate_bulk_positions(self, positions: np.ndarray,
                              version: Optional[int] = None
                              ) -> BulkPlacement:
        """Bulk placement for pre-hashed ring *positions* (callers that
        cache hashes, e.g. repeated sweeps over a fixed catalog)."""
        table = (self.history.current if version is None
                 else self.history.get(version))
        prof = OBS.profiler
        if prof is not None:
            prof.push("kernel.locate_bulk")
        try:
            if OBS.hot:
                t0 = perf_counter()
                result = self._locate_bulk_positions(positions, table)
                OBS.metrics.observe("perf.core.locate_bulk",
                                    perf_counter() - t0)
                OBS.metrics.inc("core.locates", len(result))
                return result
            return self._locate_bulk_positions(positions, table)
        finally:
            if prof is not None:
                prof.pop()

    def _locate_bulk_positions(self, positions: np.ndarray,
                               table: MembershipTable) -> BulkPlacement:
        slots = self.ring.bulk_successor_slots(
            np.asarray(positions, dtype=np.uint64))
        tbl = self._kernel.table(table.version, table.is_active)
        return tbl.gather(slots)

    def invalidate_placement_cache(self) -> None:
        """Drop every memoized slot table.  Required only after
        mutations the ring cannot see — a re-layout that changes roles
        without changing weights (uniform mode); ring weight changes
        self-invalidate via the generation counter."""
        self._kernel.invalidate()

    def record_write(self, oid: int) -> PlacementResult:
        """Place *oid* for a write in the current version and perform
        the dirty-tracking side effects (§III-E-2): tag the object
        header with the version, and log a dirty entry unless the
        cluster is at full power."""
        placement = self.locate(oid)
        version = self.current_version
        self.last_written[oid] = version
        self.location_version[oid] = version
        if not self.is_full_power:
            self.dirty.insert(oid, version)
            OBS.metrics.inc("core.offloaded_writes")
        OBS.metrics.inc("core.writes")
        return placement

    def locate_current_replicas(self, oid: int) -> PlacementResult:
        """Where the *newest* replicas of *oid* physically are: the
        placement under its location version (write or last partial
        re-integration, whichever is later)."""
        version = self.location_version.get(oid)
        if version is None:
            raise KeyError(f"object never written: {oid}")
        return self.locate(oid, version)

    def is_dirty(self, oid: int) -> bool:
        """Object-header dirty bit: the object's last write has not yet
        been re-integrated into a full-power layout."""
        return self.dirty.contains_oid(oid)

    def mark_clean(self, oid: int) -> None:
        """Clear the dirty bit (all entries) for *oid* — called by the
        re-integration engine once the object reaches its full-power
        placement."""
        self.dirty.remove_oid(oid)

    # ------------------------------------------------------------------
    # analysis helpers
    # ------------------------------------------------------------------
    def placement_map(self, oids: Iterable[int],
                      version: Optional[int] = None
                      ) -> Dict[int, Tuple[int, ...]]:
        """Bulk ``{oid: servers}`` under one version."""
        oid_list = list(oids)
        bulk = self.locate_bulk(oid_list, version)
        if not bulk.all_ok:
            bad = int(np.flatnonzero(~bulk.ok)[0])
            self.locate(oid_list[bad], version)   # raises with the oid
        rows = bulk.rows()
        return {oid: tuple(row) for oid, row in zip(oid_list, rows)}

    def blocks_per_rank(self, oids: Iterable[int],
                        version: Optional[int] = None) -> Dict[int, int]:
        """Replica count per rank for a set of objects — the y-axis of
        Figure 5."""
        oid_list = list(oids)
        counts: Dict[int, int] = {r: 0 for r in self.layout.ranks}
        if not oid_list:
            return counts
        bulk = self.locate_bulk(oid_list, version)
        if not bulk.all_ok:
            bad = int(np.flatnonzero(~bulk.ok)[0])
            self.locate(oid_list[bad], version)   # raises with the oid
        per_rank = np.bincount(bulk.servers.ravel(),
                               minlength=max(self.layout.ranks) + 1)
        for r in counts:
            counts[r] = int(per_rank[r])
        return counts

    def describe(self) -> str:
        """One-line configuration summary for logs and examples."""
        return (f"ElasticConsistentHash(n={self.n}, r={self.replicas}, "
                f"p={self.p}, B={self.layout.B}, chain={self.chain!r}, "
                f"version={self.current_version}, "
                f"active={self.num_active}/{self.n})")
