"""Equal-work data layout (§III-C) and node capacity configuration
(§III-D).

The layout assigns each server a virtual-node *weight* so that the data
volume per server follows Rabbit's equal-work curve:

* ``p = ceil(n / e^2)`` servers are primaries, each weighted ``B / p``;
* the secondary with rank ``i`` (``p < i <= n``) is weighted ``B / i``;

where ``B`` is an integer vnode budget "large enough for data
distribution fairness".  With r-way replication and one replica pinned
to the primaries, this makes the *expected* number of blocks on a
primary ``N/p`` and on secondary rank i proportional to ``1/i`` — the
equal-work shape drawn as the red line in Figure 5, which is what gives
every active subset ``{1..k}`` read-performance proportional to k.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Dict, List, Sequence, Tuple

__all__ = [
    "primary_count",
    "equal_work_weights",
    "expected_block_fractions",
    "EqualWorkLayout",
    "CapacityPlan",
]

_E_SQUARED = math.e ** 2


def primary_count(n: int, replicas: int = 2) -> int:
    """Number of primary servers, ``p = ceil(n / e^2)`` (§III-C).

    The result is floored at 1 and — so that the §III-B special case
    ("more primary servers than the number of replicas" is "in fact
    mostly true") stays representable — is *not* forced above the
    replica count: for tiny clusters where ``p < r`` the placement
    layer handles degraded role assignment instead.
    """
    if n < 1:
        raise ValueError("cluster size must be >= 1")
    if replicas < 1:
        raise ValueError("replica count must be >= 1")
    return max(1, math.ceil(n / _E_SQUARED))


def equal_work_weights(n: int, B: int = 10_000,
                       p: int | None = None) -> Dict[int, int]:
    """Virtual-node weight per rank for the equal-work layout.

    Parameters
    ----------
    n:
        Cluster size; ranks are ``1..n``.
    B:
        Total vnode budget parameter (Equation 1/2's ``B``).  The
        paper's example uses 1000 and notes "a much larger B will be
        chosen for better load balance" in practice.
    p:
        Primary count override; defaults to :func:`primary_count`.

    Returns
    -------
    dict
        ``{rank: weight}`` with every weight >= 1.
    """
    if B < n:
        raise ValueError(f"B={B} too small for n={n}: some weight would be 0")
    if p is None:
        p = primary_count(n)
    if not 1 <= p <= n:
        raise ValueError(f"primary count {p} out of range for n={n}")
    weights: Dict[int, int] = {}
    for rank in range(1, n + 1):
        if rank <= p:
            w = B // p          # Equation 1: v_primary = B / p
        else:
            w = B // rank       # Equation 2: v_secondary_i = B / i
        weights[rank] = max(1, w)
    return weights


def expected_block_fractions(weights: Dict[int, int]) -> Dict[int, float]:
    """Expected fraction of *single-copy* keys per rank implied by the
    weights (weight over total).  Placement-level effects (primary
    pinning, offloading) are layered on top by the placement tests."""
    total = float(sum(weights.values()))
    return {rank: w / total for rank, w in weights.items()}


@dataclass(frozen=True)
class EqualWorkLayout:
    """The resolved layout for one cluster: ranks, roles and weights.

    This object is pure configuration — it owns no ring and no state —
    so it can be shared by the placement layer, the capacity planner and
    the analysis code.
    """

    n: int
    replicas: int
    B: int
    p: int
    weights: Tuple[int, ...]  # index 0 -> rank 1

    @classmethod
    def create(cls, n: int, replicas: int = 2, B: int = 10_000,
               p: int | None = None) -> "EqualWorkLayout":
        if p is None:
            p = primary_count(n, replicas)
        w = equal_work_weights(n, B, p)
        return cls(n=n, replicas=replicas, B=B, p=p,
                   weights=tuple(w[r] for r in range(1, n + 1)))

    @classmethod
    def uniform(cls, n: int, replicas: int = 2, B: int = 10_000,
                p: int | None = None) -> "EqualWorkLayout":
        """A uniform-weight layout (the original consistent hashing
        distribution) with the same rank/role bookkeeping.  Used where
        the paper isolates re-integration from layout effects (§V-A:
        "primary server and data layout are not considered here")."""
        if B < n:
            raise ValueError(f"B={B} too small for n={n}")
        if p is None:
            p = primary_count(n, replicas)
        if not 1 <= p <= n:
            raise ValueError(f"primary count {p} out of range for n={n}")
        return cls(n=n, replicas=replicas, B=B, p=p,
                   weights=tuple([max(1, B // n)] * n))

    # ------------------------------------------------------------------
    def weight_of(self, rank: int) -> int:
        return self.weights[rank - 1]

    def is_primary(self, rank: int) -> bool:
        return 1 <= rank <= self.p

    @property
    def ranks(self) -> range:
        return range(1, self.n + 1)

    @property
    def primary_ranks(self) -> range:
        return range(1, self.p + 1)

    @property
    def secondary_ranks(self) -> range:
        return range(self.p + 1, self.n + 1)

    @property
    def min_active(self) -> int:
        """The smallest power state: primaries only.  This is the floor
        visible in Figures 8/9 ("not able to size down further until
        there are only primary servers")."""
        return self.p

    def weight_map(self) -> Dict[int, int]:
        return {r: self.weights[r - 1] for r in self.ranks}

    def expected_fractions(self) -> Dict[int, float]:
        return expected_block_fractions(self.weight_map())


@dataclass(frozen=True)
class CapacityPlan:
    """Node capacity configuration (§III-D).

    The equal-work layout stores wildly different volumes per rank, so
    uniform-capacity servers would over-/under-utilise.  The paper's
    mitigation: pick a small set of capacity tiers (e.g. 2 TB, 1.5 TB,
    1 TB, 750 GB, 500 GB, 320 GB) and assign each tier to a group of
    neighbouring ranks, approximately proportional to the rank's weight.

    Attributes
    ----------
    capacities:
        Per-rank capacity in bytes (index 0 -> rank 1).
    tiers:
        The tier sizes used, descending.
    """

    capacities: Tuple[int, ...]
    tiers: Tuple[int, ...]

    #: The paper's example tier set (§III-D), in bytes.
    DEFAULT_TIERS: Tuple[int, ...] = (
        2_000_000_000_000,
        1_500_000_000_000,
        1_000_000_000_000,
        750_000_000_000,
        500_000_000_000,
        320_000_000_000,
    )

    @classmethod
    def for_layout(cls, layout: EqualWorkLayout,
                   tiers: Sequence[int] | None = None,
                   total_capacity: int | None = None) -> "CapacityPlan":
        """Assign each rank the smallest tier whose share of the total
        capacity still covers the rank's share of the data.

        Parameters
        ----------
        layout:
            The equal-work layout to provision for.
        tiers:
            Available capacity sizes, any order; defaults to the
            paper's example set.
        total_capacity:
            Target usable capacity of the whole cluster.  Defaults to
            the sum of the largest tier over all ranks scaled by each
            rank's weight fraction (i.e. "big enough").
        """
        tier_list = tuple(sorted(tiers or cls.DEFAULT_TIERS, reverse=True))
        if any(t <= 0 for t in tier_list):
            raise ValueError("capacity tiers must be positive")
        fracs = layout.expected_fractions()
        if total_capacity is None:
            total_capacity = tier_list[0] * layout.n
        caps: List[int] = []
        for rank in layout.ranks:
            needed = fracs[rank] * total_capacity
            # Smallest tier that still fits this rank's expected volume;
            # neighbouring ranks have similar fractions, so this
            # naturally groups neighbours into the same tier (§III-D).
            chosen = tier_list[0]
            for t in tier_list:
                if t >= needed:
                    chosen = t
                else:
                    break
            caps.append(chosen)
        return cls(capacities=tuple(caps), tiers=tier_list)

    def capacity_of(self, rank: int) -> int:
        return self.capacities[rank - 1]

    @property
    def total(self) -> int:
        return sum(self.capacities)

    def utilisation(self, bytes_per_rank: Dict[int, int]) -> Dict[int, float]:
        """Fraction of each rank's capacity in use — the §III-D balance
        diagnostic."""
        return {
            rank: bytes_per_rank.get(rank, 0) / self.capacities[rank - 1]
            for rank in range(1, len(self.capacities) + 1)
        }
