"""Interruptible bulk transfers: recovery and re-integration as
preemptible fluid flows with retry/backoff and quarantine.

The crash-consistency discipline (see ``docs/ROBUSTNESS.md``):

* **Plan**: each launch calls the job's ``plan_fn`` fresh — the work
  is re-planned against the membership current *now*, because a crash
  or resize may have moved the targets since the job was enqueued.
* **Move**: the planned bytes ride a
  :class:`~repro.simulation.flows.FluidFlow` tagged with the ranks it
  depends on; the endpoints are pinned via
  ``ElasticCluster.acquire_ranks`` so a repair cannot race an
  in-flight transfer.
* **Commit on ack only**: cluster state (replica maps, location
  versions, dirty entries) mutates exclusively in the plan's
  ``commit`` callback, which runs after the flow drains and the
  ``transfer.ack`` event is emitted.  An interrupted flow therefore
  needs no rollback: its partial bytes are recorded as wasted work,
  the dirty entries it would have cleared are still in the table, and
  the job re-enqueues under the :class:`~repro.faults.retry.RetryPolicy`.
* **Quarantine**: a job preempted past ``max_attempts`` stops
  retrying; its objects are surfaced as *degraded* in the chaos
  report instead of silently spinning.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import (
    Callable,
    Dict,
    FrozenSet,
    Iterable,
    List,
    Mapping,
    Optional,
    Tuple,
)

from repro.obs.profile import profiled
from repro.obs.runtime import OBS
from repro.simulation.flows import FluidFlow, FlowSet

__all__ = ["PlannedTransfer", "TransferJob", "TransferManager"]


@dataclass
class PlannedTransfer:
    """One launch-time snapshot of a transfer: the bytes to move, the
    ranks it depends on, the objects it will settle, and the commit
    that lands the state change once the bytes are acknowledged."""

    nbytes: float
    ranks: FrozenSet[int]
    oids: Tuple[int, ...]
    commit: Callable[[], None]
    #: Optional explicit per-rank load routing; the manager's
    #: ``coefficients_for`` hook (or an even spread) applies when None.
    coefficients: Optional[Mapping[int, float]] = None


@dataclass
class TransferJob:
    """A unit of re-enqueueable transfer work.

    ``plan_fn`` returns the :class:`PlannedTransfer` for *this* launch
    (or ``None`` when the work has evaporated — e.g. the dirty entries
    were settled by a later pass); it is called once per attempt.
    """

    key: str
    kind: str  # flow name: "recovery" | "reintegration" | ...
    plan_fn: Callable[[], Optional[PlannedTransfer]]
    rate_cap: float = math.inf

    attempts: int = 0
    status: str = "pending"  # pending | active | done | quarantined
    ready_at: float = 0.0
    wasted_bytes: float = 0.0
    flow: Optional[FluidFlow] = None
    planned: Optional[PlannedTransfer] = None
    #: Objects named by the most recent plan — what a quarantine
    #: surfaces as degraded.
    last_oids: Tuple[int, ...] = field(default_factory=tuple)


class TransferManager:
    """Launches, preempts, retries and quarantines transfer jobs.

    Parameters
    ----------
    cluster:
        Supplies ``acquire_ranks`` / ``release_ranks`` /
        ``record_wasted_bytes`` (an :class:`ElasticCluster`).
    flows:
        The live :class:`~repro.simulation.flows.FlowSet` the
        transfers' fluid flows join.
    policy:
        The :class:`~repro.faults.retry.RetryPolicy` governing
        re-enqueues.
    coefficients_for:
        ``(planned, job) -> {rank: load}`` routing hook; default
        spreads the load evenly over the planned ranks.
    link_blocked:
        ``(ranks) -> bool`` — consulted at launch so a transfer never
        starts across a known-dead link (it backs off instead).
    """

    def __init__(
        self,
        cluster,
        flows: FlowSet,
        policy,
        coefficients_for: Optional[
            Callable[[PlannedTransfer, TransferJob],
                     Mapping[int, float]]] = None,
        link_blocked: Optional[Callable[[Iterable[int]], bool]] = None,
        parent_span=None,
    ) -> None:
        self.cluster = cluster
        self.flows = flows
        self.policy = policy
        self._coefficients_for = coefficients_for
        self._link_blocked = link_blocked
        self._parent_span = parent_span
        #: Fired after a launch's ``transfer.start`` — the chaos
        #: harness hangs fault triggers here: ``hook(job, now)``.
        self.on_start: Optional[Callable[[TransferJob, float], None]] = None

        self.jobs: List[TransferJob] = []
        self.pending: List[TransferJob] = []
        self.active: List[TransferJob] = []
        self.quarantined: List[TransferJob] = []
        self.completed = 0
        self.retries = 0
        self.interrupts = 0

    # ------------------------------------------------------------------
    @property
    def idle(self) -> bool:
        """No work in flight and none waiting (quarantined jobs are
        abandoned, not waiting)."""
        return not self.active and not self.pending

    def stats(self) -> Dict[str, int]:
        return {
            "submitted": len(self.jobs),
            "completed": self.completed,
            "active": len(self.active),
            "pending": len(self.pending),
            "retries": self.retries,
            "interrupted": self.interrupts,
            "quarantined": len(self.quarantined),
        }

    def degraded_objects(self) -> Tuple[int, ...]:
        """Objects stranded by quarantined transfers, sorted."""
        oids: set = set()
        for job in self.quarantined:
            oids.update(job.last_oids)
        return tuple(sorted(oids))

    # ------------------------------------------------------------------
    # lifecycle
    # ------------------------------------------------------------------
    def submit(self, job: TransferJob, now: float = 0.0) -> TransferJob:
        job.ready_at = now
        self.jobs.append(job)
        self.pending.append(job)
        OBS.metrics.inc("transfers.submitted")
        return job

    @profiled("transfers.poll")
    def poll(self, now: float) -> int:
        """Launch every pending job whose backoff has expired; returns
        how many went live.  A launch that backs off again (dead link)
        re-enters the queue with ``ready_at`` in the future, so the
        loop cannot spin."""
        launched = 0
        for job in list(self.pending):
            if job.status != "pending" or job.ready_at > now:
                continue
            self.pending.remove(job)
            launched += self._launch(job, now)
        return launched

    def _launch(self, job: TransferJob, now: float) -> int:
        planned = job.plan_fn()
        if planned is None:
            # The work evaporated (e.g. a later pass settled the
            # entries): done without a transfer.
            job.status = "done"
            self.completed += 1
            return 0
        job.planned = planned
        job.last_oids = tuple(planned.oids)
        job.attempts += 1
        if (planned.ranks and self._link_blocked is not None
                and self._link_blocked(planned.ranks)):
            self._setback(job, now, "link-blocked")
            return 0
        if OBS.bus.active:
            OBS.bus.emit("transfer.start", key=job.key, transfer=job.kind,
                         attempt=job.attempts,
                         nbytes=float(planned.nbytes),
                         objects=len(planned.oids),
                         ranks=sorted(planned.ranks))
        OBS.metrics.inc("transfers.started")
        if planned.nbytes <= 0:
            # Nothing to move (stale-entry cleanup): ack and commit
            # immediately — the ack still precedes the dirty removals.
            job.status = "active"
            self.active.append(job)
            if self.on_start is not None:
                self.on_start(job, now)
            self.active.remove(job)
            self._ack(job, planned)
            return 1
        coefficients = planned.coefficients
        if coefficients is None:
            if self._coefficients_for is not None:
                coefficients = self._coefficients_for(planned, job)
            else:
                ranks = sorted(planned.ranks)
                coefficients = {r: 1.0 / len(ranks) for r in ranks}
        flow = FluidFlow(
            name=job.kind,
            coefficients=coefficients,
            total_bytes=float(planned.nbytes),
            rate_cap=job.rate_cap,
            ranks=frozenset(planned.ranks),
            on_complete=lambda _flow, j=job: self._on_complete(j),
            on_interrupt=lambda _flow, j=job: self._on_interrupt(j, _flow),
        )
        self.cluster.acquire_ranks(planned.ranks)
        job.status = "active"
        job.flow = flow
        self.active.append(job)
        self.flows.add(flow, parent=self._parent_span)
        if self.on_start is not None:
            self.on_start(job, now)
        return 1

    # ------------------------------------------------------------------
    def _ack(self, job: TransferJob, planned: PlannedTransfer) -> None:
        """The bytes landed: acknowledge, then commit.  The ack event
        precedes the commit's ``dirty.remove`` emissions — that order
        *is* the dirty-entry-cleared-only-on-ack invariant."""
        job.status = "done"
        job.flow = None
        self.completed += 1
        OBS.metrics.inc("transfers.completed")
        if OBS.bus.active:
            OBS.bus.emit("transfer.ack", key=job.key, transfer=job.kind,
                         nbytes=float(planned.nbytes),
                         oids=sorted(planned.oids))
        planned.commit()
        job.planned = None

    def _on_complete(self, job: TransferJob) -> None:
        planned = job.planned
        self.active.remove(job)
        self.cluster.release_ranks(planned.ranks)
        self._ack(job, planned)

    def _on_interrupt(self, job: TransferJob, flow: FluidFlow) -> None:
        """The flow was preempted (already removed from its set): no
        state to roll back — just account the waste and re-enqueue."""
        planned = job.planned
        self.active.remove(job)
        self.cluster.release_ranks(planned.ranks)
        self.interrupts += 1
        job.wasted_bytes += flow.progressed
        self.cluster.record_wasted_bytes(job.kind, flow.progressed)
        job.flow = None
        job.planned = None
        self._setback(job, float(OBS.bus.clock), "interrupted")

    def _setback(self, job: TransferJob, now: float, reason: str) -> None:
        if self.policy.exhausted(job.attempts):
            self._quarantine(job, reason)
            return
        delay = self.policy.delay(job.attempts, key=job.key)
        job.ready_at = now + delay
        job.status = "pending"
        self.pending.append(job)
        self.retries += 1
        OBS.metrics.inc("transfers.retried")
        if OBS.bus.active:
            OBS.bus.emit("transfer.retry", key=job.key, transfer=job.kind,
                         attempt=job.attempts, delay=delay, reason=reason)

    def _quarantine(self, job: TransferJob, reason: str) -> None:
        job.status = "quarantined"
        job.planned = None
        self.quarantined.append(job)
        OBS.metrics.inc("transfers.quarantined")
        if OBS.bus.active:
            OBS.bus.emit("transfer.quarantine", key=job.key,
                         transfer=job.kind, attempts=job.attempts,
                         reason=reason, oids=sorted(job.last_oids))

    # ------------------------------------------------------------------
    # fault entry points
    # ------------------------------------------------------------------
    def on_crash(self, rank: int, reason: str = "crash") -> int:
        """Preempt every active transfer depending on *rank*; returns
        how many were interrupted."""
        hit = 0
        for job in list(self.active):
            if (job.planned is not None and rank in job.planned.ranks
                    and job.flow is not None):
                self.flows.interrupt(job.flow, reason=reason)
                hit += 1
        return hit

    def on_link_loss(self, pair: Iterable[int]) -> int:
        """Preempt every active transfer spanning both endpoints of a
        dead link."""
        endpoints = frozenset(pair)
        hit = 0
        for job in list(self.active):
            if (job.planned is not None and job.flow is not None
                    and endpoints <= set(job.planned.ranks)):
                self.flows.interrupt(job.flow, reason="link-loss")
                hit += 1
        return hit
