"""Deterministic fault injection: plans, the injector, interruptible
transfers with retry/backoff, and the chaos harness.

The robustness claim of the elastic design — dirty tracking plus
selective re-integration keeps data safe across power transitions —
only means something if it survives faults *during* the transitions.
This package supplies the machinery to test that:

* :class:`FaultPlan` / :class:`FaultEvent` — a declarative, seedable,
  JSON-serialisable schedule of crashes (with delayed repair),
  transient disk-bandwidth degradations and transient link losses;
* :class:`FaultInjector` — expands a plan into atomic actions on the
  discrete-event :class:`~repro.simulation.engine.Simulator`, so a
  same-seed run replays the identical fault sequence byte for byte;
* :class:`RetryPolicy` — capped exponential backoff with
  deterministic (hash-derived) jitter and a quarantine threshold;
* :class:`TransferManager` / :class:`TransferJob` — recovery and
  re-integration as *interruptible* fluid transfers: a crash or link
  loss preempts the flow, wastes its partial bytes, and re-enqueues
  the work under the retry policy; state only commits on an
  acknowledged completion;
* :func:`run_chaos` — the §V-A three-phase workload replayed under a
  fault plan with the online invariant checkers attached
  (``python -m repro chaos``).
"""

from repro.faults.plan import FaultEvent, FaultPlan
from repro.faults.injector import FaultAction, FaultInjector
from repro.faults.retry import RetryPolicy
from repro.faults.transfers import (
    PlannedTransfer,
    TransferJob,
    TransferManager,
)
from repro.faults.harness import ChaosResult, render_chaos_report, run_chaos

__all__ = [
    "FaultEvent",
    "FaultPlan",
    "FaultAction",
    "FaultInjector",
    "RetryPolicy",
    "PlannedTransfer",
    "TransferJob",
    "TransferManager",
    "ChaosResult",
    "run_chaos",
    "render_chaos_report",
]
