"""Declarative fault plans: *what* goes wrong, and *when*.

A :class:`FaultPlan` is data, not behaviour — a list of
:class:`FaultEvent` records that can be generated from a seed,
round-tripped through JSON (so a failing chaos run's plan can be
attached to a bug report and replayed exactly), and validated against
a cluster size before anything is armed.  The
:class:`~repro.faults.injector.FaultInjector` turns a plan into
scheduled simulator actions.

Three fault kinds model the paper's operational environment:

``crash``
    A server dies losing its replicas (§II-C's failure case, as
    opposed to a planned power-down which keeps data on disk).  Every
    crash carries a ``repair_after`` window — the delayed-repair
    period during which the cluster runs under-replicated and
    recovery traffic competes with the foreground workload.
``slow_disk``
    A transient disk-bandwidth degradation: for ``duration`` seconds
    the rank's capacity is multiplied by ``factor`` (< 1).
``link_loss``
    The link between two ranks drops for ``duration`` seconds; any
    bulk transfer depending on both endpoints is preempted and
    retried under backoff.

An event fires either at an absolute simulation ``time`` or at
``time`` seconds after a named *trigger* observed by the harness
(``phase2`` / ``phase3`` start, first ``recovery`` or
``reintegration`` transfer start) — triggers are what make "crash
mid-re-integration" a deterministic scenario at any workload scale.
"""

from __future__ import annotations

import json
import math
from dataclasses import dataclass, field
from typing import Dict, Iterator, List, Optional, Sequence

import numpy as np

__all__ = ["FaultEvent", "FaultPlan", "KINDS", "TRIGGERS"]

#: Recognised fault kinds.
KINDS = ("crash", "slow_disk", "link_loss")

#: Recognised trigger names (see module docstring).
TRIGGERS = ("phase2", "phase3", "recovery", "reintegration")


@dataclass(frozen=True)
class FaultEvent:
    """One planned fault (see module docstring for the kinds).

    ``time`` is absolute simulation seconds, or — when ``trigger`` is
    set — the offset after the trigger fires.
    """

    kind: str
    time: float
    rank: Optional[int] = None
    peer: Optional[int] = None
    duration: Optional[float] = None
    factor: Optional[float] = None
    repair_after: Optional[float] = None
    trigger: Optional[str] = None

    def __post_init__(self) -> None:
        if self.kind not in KINDS:
            raise ValueError(f"unknown fault kind: {self.kind!r} "
                             f"(expected one of {KINDS})")
        if not (isinstance(self.time, (int, float))
                and math.isfinite(self.time) and self.time >= 0):
            raise ValueError(f"time must be a finite number >= 0, "
                             f"got {self.time!r}")
        if self.trigger is not None and self.trigger not in TRIGGERS:
            raise ValueError(f"unknown trigger: {self.trigger!r} "
                             f"(expected one of {TRIGGERS})")
        if self.kind == "crash":
            if self.rank is None:
                raise ValueError("crash needs a rank")
            if not (isinstance(self.repair_after, (int, float))
                    and math.isfinite(self.repair_after)
                    and self.repair_after > 0):
                raise ValueError(
                    "crash needs repair_after > 0: an unbounded outage "
                    "leaves the cluster under-replicated forever and no "
                    "invariant could ever settle")
        elif self.kind == "slow_disk":
            if self.rank is None:
                raise ValueError("slow_disk needs a rank")
            if not (self.duration and self.duration > 0):
                raise ValueError("slow_disk needs duration > 0")
            if (self.factor is None or not 0.0 <= self.factor < 1.0):
                raise ValueError("slow_disk needs factor in [0, 1)")
        else:  # link_loss
            if self.rank is None or self.peer is None:
                raise ValueError("link_loss needs rank and peer")
            if self.rank == self.peer:
                raise ValueError("link_loss endpoints must differ")
            if not (self.duration and self.duration > 0):
                raise ValueError("link_loss needs duration > 0")

    # ------------------------------------------------------------------
    def to_dict(self) -> Dict[str, object]:
        out: Dict[str, object] = {"kind": self.kind, "time": self.time}
        for name in ("rank", "peer", "duration", "factor",
                     "repair_after", "trigger"):
            value = getattr(self, name)
            if value is not None:
                out[name] = value
        return out

    @classmethod
    def from_dict(cls, data: Dict[str, object]) -> "FaultEvent":
        known = {"kind", "time", "rank", "peer", "duration", "factor",
                 "repair_after", "trigger"}
        extra = set(data) - known
        if extra:
            raise ValueError(f"unknown fault-event fields: {sorted(extra)}")
        return cls(**data)  # type: ignore[arg-type]


@dataclass
class FaultPlan:
    """An ordered list of fault events plus the seed that produced it
    (``None`` for hand-written plans)."""

    events: List[FaultEvent] = field(default_factory=list)
    seed: Optional[int] = None

    def __len__(self) -> int:
        return len(self.events)

    def __iter__(self) -> Iterator[FaultEvent]:
        return iter(self.events)

    # ------------------------------------------------------------------
    def timed(self) -> List[FaultEvent]:
        """Events firing at absolute times (no trigger)."""
        return [e for e in self.events if e.trigger is None]

    def triggered(self, name: str) -> List[FaultEvent]:
        """Events waiting on trigger *name*."""
        return [e for e in self.events if e.trigger == name]

    def check_ranks(self, n: int) -> None:
        """Reject a plan that names ranks outside ``1..n``."""
        for e in self.events:
            for rank in (e.rank, e.peer):
                if rank is not None and not 1 <= rank <= n:
                    raise ValueError(
                        f"fault plan names rank {rank} but the cluster "
                        f"has ranks 1..{n}")

    # ------------------------------------------------------------------
    # JSON round-trip
    # ------------------------------------------------------------------
    def to_json(self) -> str:
        return json.dumps(
            {"seed": self.seed,
             "events": [e.to_dict() for e in self.events]},
            indent=2, sort_keys=True)

    @classmethod
    def from_json(cls, text: str) -> "FaultPlan":
        data = json.loads(text)
        if not isinstance(data, dict) or "events" not in data:
            raise ValueError("fault plan JSON must be an object with "
                             "an 'events' list")
        events = [FaultEvent.from_dict(d) for d in data["events"]]
        return cls(events=events, seed=data.get("seed"))

    def dump(self, path: str) -> None:
        with open(path, "w", encoding="utf-8") as fh:
            fh.write(self.to_json() + "\n")

    @classmethod
    def load(cls, path: str) -> "FaultPlan":
        with open(path, "r", encoding="utf-8") as fh:
            return cls.from_json(fh.read())

    # ------------------------------------------------------------------
    # generators
    # ------------------------------------------------------------------
    @classmethod
    def generate(
        cls,
        seed: int,
        n: int,
        duration: float,
        crashes: int = 1,
        slow_disks: int = 1,
        link_losses: int = 1,
        crashable: Optional[Sequence[int]] = None,
    ) -> "FaultPlan":
        """A random-but-reproducible plan of absolute-time faults.

        Crash scheduling keeps the plan *survivable* with r >= 2: the
        run's duration is split into one window per crash, each crash
        lands early in its window and its repair completes inside it,
        so at most one rank is ever down at a time and no two
        overlapping crashes can eat both replicas of an object.
        """
        if duration <= 0:
            raise ValueError("duration must be positive")
        if crashable is None:
            crashable = list(range(2, n + 1)) or [1]
        rng = np.random.default_rng(seed)
        events: List[FaultEvent] = []
        if crashes:
            span = duration / crashes
            for i in range(crashes):
                t = (i + float(rng.uniform(0.10, 0.35))) * span
                repair_after = float(rng.uniform(0.25, 0.45)) * span
                rank = int(rng.choice(np.asarray(crashable)))
                events.append(FaultEvent(
                    kind="crash", time=round(t, 3), rank=rank,
                    repair_after=round(repair_after, 3)))
        for _ in range(slow_disks):
            t = float(rng.uniform(0.05, 0.70)) * duration
            length = float(rng.uniform(0.10, 0.25)) * duration
            rank = int(rng.integers(1, n + 1))
            factor = float(rng.uniform(0.2, 0.6))
            events.append(FaultEvent(
                kind="slow_disk", time=round(t, 3), rank=rank,
                duration=round(length, 3), factor=round(factor, 3)))
        for _ in range(link_losses):
            t = float(rng.uniform(0.05, 0.80)) * duration
            length = float(rng.uniform(0.05, 0.15)) * duration
            a, b = (int(x) for x in rng.choice(
                np.arange(1, n + 1), size=2, replace=False))
            events.append(FaultEvent(
                kind="link_loss", time=round(t, 3), rank=min(a, b),
                peer=max(a, b), duration=round(length, 3)))
        events.sort(key=lambda e: (e.time, e.kind, e.rank or 0))
        return cls(events=events, seed=seed)

    @classmethod
    def three_phase_default(cls, seed: int, n: int = 10,
                            off_count: int = 4) -> "FaultPlan":
        """The curated chaos scenario for the §V-A workload, scale-free
        thanks to triggers:

        * a disk slow-down on a phase-2 survivor shortly into phase 2;
        * a crash of a just-re-powered secondary two seconds into the
          selective re-integration transfer — the acceptance scenario:
          the preempted transfer must re-enqueue, not drop, its dirty
          entries — with a delayed repair;
        * a link loss shortly after the crash-recovery transfer
          starts, forcing one retry/backoff round.
        """
        rng = np.random.default_rng(seed)
        repowered = (list(range(n - off_count + 1, n + 1))
                     if off_count else [n])
        survivors = list(range(2, max(n - off_count + 1, 3))) or [1]
        crash_rank = int(rng.choice(np.asarray(repowered)))
        slow_rank = int(rng.choice(np.asarray(survivors)))
        a, b = (int(x) for x in rng.choice(
            np.arange(1, n + 1), size=2, replace=False))
        events = [
            FaultEvent(kind="slow_disk", trigger="phase2", time=4.0,
                       rank=slow_rank, duration=25.0, factor=0.4),
            FaultEvent(kind="crash", trigger="reintegration", time=2.0,
                       rank=crash_rank,
                       repair_after=float(round(rng.uniform(18.0, 30.0),
                                                3))),
            FaultEvent(kind="link_loss", trigger="recovery", time=1.0,
                       rank=min(a, b), peer=max(a, b), duration=6.0),
        ]
        return cls(events=events, seed=seed)
