"""The chaos harness: the §V-A three-phase workload replayed under a
deterministic fault plan, with the online invariant checkers attached.

This is the robustness counterpart of
:func:`repro.experiments.three_phase.run_three_phase`: same workload,
same fluid-IO substrate, but recovery and selective re-integration
move their bytes through *interruptible* transfers
(:mod:`repro.faults.transfers`) while a
:class:`~repro.faults.injector.FaultInjector` crashes servers,
degrades disks and drops links per the plan.  The discrete-event
simulator interleaves fault actions between IO ticks, so a same-seed
run is byte-identical — replayable chaos.

What the run asserts (``check=True``, the default):

* every PR-2 invariant (version monotonicity, dirty-table/write
  offloading discipline, flow accounting, span nesting, ...);
* ``no-lost-object`` — no object ever drops to zero replicas;
* ``replication-restored-after-repair`` — the final ``chaos.audit``
  shows full replication;
* ``dirty-entry-cleared-only-on-ack`` — no ``dirty.remove`` without a
  preceding ``transfer.ack`` covering the object.

``python -m repro chaos`` renders the result via
:func:`render_chaos_report` and exits 1 unless :attr:`ChaosResult.ok`.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from repro.cluster.cluster import CrashRecoveryWork, ElasticCluster
from repro.core.dirty_table import DirtyTable
from repro.faults.injector import FaultAction, FaultInjector
from repro.faults.plan import FaultPlan
from repro.faults.retry import RetryPolicy
from repro.kvstore.replicated import ReplicatedKVStore
from repro.faults.transfers import (
    PlannedTransfer,
    TransferJob,
    TransferManager,
)
from repro.obs.invariants import CheckerSink, InvariantSuite, default_checkers
from repro.obs.runtime import OBS
from repro.simulation.bandwidth import apply_capacity_factors
from repro.simulation.engine import Simulator
from repro.simulation.flows import FluidFlow
from repro.simulation.iomodel import (
    IOModel,
    client_coefficients,
    replica_load_fractions_from_matrix,
)
from repro.workloads.three_phase import three_phase_workload

__all__ = ["ChaosResult", "run_chaos", "render_chaos_report"]

#: Backstop on re-integration rounds per run — each round is one
#: transfer job; the workload needs a handful even under heavy plans.
_MAX_REINTEGRATION_ROUNDS = 25


@dataclass
class ChaosResult:
    """Everything one chaos run observed, for the report and tests."""

    seed: Optional[int]
    n: int
    replicas: int
    scale: float
    duration: float
    phase_ends: Dict[str, float] = field(default_factory=dict)
    #: Injected actions in firing order: ``{t, kind, rank, peer, factor}``.
    faults: List[Dict[str, object]] = field(default_factory=list)
    transfers: Dict[str, int] = field(default_factory=dict)
    wasted_bytes: Dict[str, float] = field(default_factory=dict)
    lost_objects: List[int] = field(default_factory=list)
    #: Objects stranded by quarantined transfers.
    degraded_objects: List[int] = field(default_factory=list)
    degraded_reads: int = 0
    unavailable_reads: int = 0
    audits: List[Dict[str, object]] = field(default_factory=list)
    final_audit: Dict[str, object] = field(default_factory=dict)
    dirty_backlog: int = 0
    violations: List[str] = field(default_factory=list)
    checkers: int = 0
    events_seen: int = 0
    peak_throughput: float = 0.0
    mean_throughput: float = 0.0

    @property
    def ok(self) -> bool:
        """Did the run end healthy: no invariant violations, nothing
        lost, nothing quarantined, replication fully restored?"""
        return (not self.violations
                and not self.lost_objects
                and not self.degraded_objects
                and int(self.final_audit.get("lost", 0)) == 0
                and int(self.final_audit.get("under_replicated", 0)) == 0)


def run_chaos(
    seed: int = 7,
    n: int = 10,
    replicas: int = 2,
    scale: float = 0.25,
    off_count: int = 4,
    plan: Optional[FaultPlan] = None,
    disk_bw: float = 64e6,
    client_cap: float = 320e6,
    object_size: int = 4 * 1024 * 1024,
    reintegration_rate: float = 50e6,
    phase2_rate: float = 20e6,
    dt: float = 1.0,
    max_duration: float = 3_600.0,
    probe_objects: int = 2_000,
    audit_every: float = 10.0,
    check: bool = True,
) -> ChaosResult:
    """Run the three-phase workload under a fault plan.

    *plan* defaults to
    :meth:`FaultPlan.three_phase_default(seed, n, off_count)
    <repro.faults.plan.FaultPlan.three_phase_default>`.  All
    randomness lives in the plan generation; the run itself is a pure
    function of (plan, parameters), which is what the byte-identical
    trace guarantee rests on.
    """
    if not 0 <= off_count < n:
        raise ValueError("off_count must be in [0, n)")
    if n - off_count < replicas:
        raise ValueError(
            f"phase-2 active count {n - off_count} cannot hold "
            f"{replicas} replicas; lower off_count or replicas")
    if plan is None:
        plan = FaultPlan.three_phase_default(seed, n=n, off_count=off_count)
    plan.check_ranks(n)

    phases = three_phase_workload(scale=scale, phase2_rate=phase2_rate)
    sim = Simulator()
    injector = FaultInjector(plan)
    # The dirty table rides the replicated KV across ALL ranks (not
    # just the always-on primaries): a crashed rank takes its metadata
    # shard down with it, and the quorum + anti-entropy machinery — not
    # single-copy luck — is what keeps the table intact.  Degrade mode
    # keeps the metadata path available through partitions; the kv.*
    # checkers watch what that costs.
    dirty_store = ReplicatedKVStore(
        list(range(1, n + 1)), replicas=min(3, n),
        link_blocked=injector.link_blocked, on_no_quorum="degrade")
    cluster = ElasticCluster(n, replicas, disk_bandwidth=disk_bw,
                             layout_mode="uniform",
                             placement_mode="original",
                             dirty_table=DirtyTable(dirty_store))
    policy = RetryPolicy(seed=seed if seed is not None else 0)
    oid_counter = itertools.count(1)

    # ------------------------------------------------------------------
    # membership-dependent state (same shape as the three-phase driver)
    # ------------------------------------------------------------------
    def active_ranks() -> List[int]:
        table = cluster.ech.membership
        return [r for r in cluster.servers if table.is_active(r)]

    def capacities() -> Dict[int, float]:
        return apply_capacity_factors(
            {r: disk_bw for r in active_ranks()},
            injector.capacity_factors())

    frac_cache: Dict[Tuple[int, ...], Dict[int, float]] = {}

    def fractions() -> Dict[int, float]:
        key = tuple(sorted(active_ranks()))
        if key not in frac_cache:
            probe = range(10_000_000, 10_000_000 + probe_objects)
            matrix = cluster.ech.locate_bulk(probe).servers
            frac_cache[key] = replica_load_fractions_from_matrix(matrix)
        return frac_cache[key]

    # Capacities depend on the membership table (placement version)
    # and the injector's ambient degradation windows (its generation
    # bumps on every fired action) — together a complete, cheap token
    # for "capacities provably unchanged since the last solve".
    io = IOModel(capacities, dt=dt,
                 capacity_token=lambda: (cluster.ech.current_version,
                                         injector.generation))

    def transfer_coefficients(planned: PlannedTransfer,
                              _job: TransferJob) -> Dict[int, float]:
        ranks = sorted(planned.ranks) or active_ranks()
        return {r: 1.0 / len(ranks) for r in ranks}

    manager = TransferManager(cluster, io.flows, policy,
                              coefficients_for=transfer_coefficients,
                              link_blocked=injector.link_blocked)

    state = {
        "phase_idx": 0,
        "client": None,
        "write_carry": 0.0,
        "phase_ends": {},
        "desired": n,
        "crashed": set(),
        "reint_round": 0,
        "written": 0,
        "degraded_reads": 0,
        "unavailable_reads": 0,
    }
    audits: List[Dict[str, object]] = []

    # ------------------------------------------------------------------
    # client phases
    # ------------------------------------------------------------------
    def start_phase(idx: int) -> None:
        phase = phases[idx]
        coeffs = client_coefficients(fractions(), replicas,
                                     phase.write_ratio)
        cap = min(client_cap, phase.rate_cap or client_cap)
        state["client"] = io.flows.add(FluidFlow(
            name="client", coefficients=coeffs,
            total_bytes=phase.total_bytes, rate_cap=cap))

    def refresh_client_coefficients() -> None:
        flow = state["client"]
        if flow is not None and not flow.done:
            phase = phases[state["phase_idx"]]
            flow.coefficients = client_coefficients(
                fractions(), replicas, phase.write_ratio)

    def materialise_writes(now: float) -> None:
        flow = state["client"]
        if flow is None:
            return
        phase = phases[state["phase_idx"]]
        state["write_carry"] += flow.last_rate * dt * phase.write_ratio
        while state["write_carry"] >= object_size:
            cluster.write(next(oid_counter), object_size)
            state["written"] += 1
            state["write_carry"] -= object_size

    def sample_read(now: float) -> None:
        """One deterministic read per tick through the degraded-read
        fallback path — exercises the replica-chain walk whenever a
        crash window leaves primaries dark."""
        if state["written"] == 0:
            return
        oid = (int(round(now / dt)) % state["written"]) + 1
        try:
            _, degraded = cluster.read_with_fallback(oid)
        except LookupError:
            state["unavailable_reads"] += 1
            OBS.bus.emit("read.unavailable", t=now, oid=oid)
            return
        if degraded:
            state["degraded_reads"] += 1
            OBS.bus.emit("read.degraded", t=now, oid=oid)

    # ------------------------------------------------------------------
    # transfers
    # ------------------------------------------------------------------
    def submit_recovery(work: CrashRecoveryWork, now: float) -> None:
        key = f"recovery:r{work.rank}v{work.version}"

        def plan_fn(work: CrashRecoveryWork = work
                    ) -> Optional[PlannedTransfer]:
            nbytes, ranks = cluster.crash_recovery_outlook(work)
            return PlannedTransfer(
                nbytes=float(nbytes),
                ranks=frozenset(ranks),
                oids=tuple(sorted(work.lost)),
                commit=lambda: cluster.commit_crash_recovery(
                    work, strict=False))

        manager.submit(TransferJob(key=key, kind="recovery",
                                   plan_fn=plan_fn), now=now)

    def maybe_submit_reintegration(now: float) -> bool:
        if any(job.kind == "reintegration"
               and job.status in ("pending", "active")
               for job in manager.jobs):
            return False
        if state["reint_round"] >= _MAX_REINTEGRATION_ROUNDS:
            return False
        outlook = cluster.plan_selective_reintegration()
        if outlook.actionable == 0:
            return False
        if outlook.nbytes == 0 and not cluster.ech.is_full_power:
            # Nothing to move, and below full power Algorithm 2 may not
            # clear entries (lines 11-13): a round would be pure churn.
            # The entries wait for the repair/repower round.
            return False
        state["reint_round"] += 1
        key = f"reintegration:{state['reint_round']}"

        def plan_fn() -> Optional[PlannedTransfer]:
            p = cluster.plan_selective_reintegration()
            if p.actionable == 0:
                return None
            return PlannedTransfer(
                nbytes=float(p.nbytes),
                ranks=frozenset(p.involved_ranks()),
                oids=p.oids,
                commit=lambda p=p:
                    cluster.commit_selective_reintegration(p))

        manager.submit(TransferJob(key=key, kind="reintegration",
                                   plan_fn=plan_fn,
                                   rate_cap=reintegration_rate), now=now)
        return True

    def on_transfer_start(job: TransferJob, now: float) -> None:
        if job.kind in ("recovery", "reintegration"):
            injector.fire_trigger(job.kind, now)

    manager.on_start = on_transfer_start

    # ------------------------------------------------------------------
    # fault handling
    # ------------------------------------------------------------------
    def attempt_repair(rank: int) -> None:
        if cluster.inflight_ranks.get(rank, 0):
            # A transfer still pins the rank (repair_server would
            # refuse): drain first, try again next tick.
            sim.schedule(dt, attempt_repair, rank)
            return
        cluster.repair_server(rank)
        dirty_store.repair_node(rank)   # re-replicates its kv shard
        state["crashed"].discard(rank)
        target = min(state["desired"], n - len(state["crashed"]))
        if target != cluster.num_active:
            cluster.resize(target)
        refresh_client_coefficients()
        maybe_submit_reintegration(sim.now)

    def handle_fault(action: FaultAction) -> None:
        now = sim.now
        if action.kind == "crash":
            rank = action.rank
            if rank in state["crashed"]:
                return
            manager.on_crash(rank)
            dirty_store.crash_node(rank)   # its kv shard dies with it
            work = cluster.crash_server(rank)
            state["crashed"].add(rank)
            refresh_client_coefficients()
            if work.lost:
                submit_recovery(work, now)
            else:
                cluster.commit_crash_recovery(work, strict=False)
        elif action.kind == "repair":
            attempt_repair(action.rank)
        elif action.kind == "link_loss.start":
            manager.on_link_loss((action.rank, action.peer))
        # slow_disk.* and link_loss.end are ambient: capacities() and
        # the launch-time link check pick them up.

    injector.arm(sim, handle_fault)

    # ------------------------------------------------------------------
    # audits
    # ------------------------------------------------------------------
    def emit_audit(now: float, label: str = "periodic") -> None:
        audit = cluster.replication_audit()
        rec: Dict[str, object] = {
            "t": now, "label": label, **audit,
            "dirty": len(cluster.ech.dirty),
            "active_transfers": len(manager.active),
            "quarantined": len(manager.quarantined),
        }
        audits.append(rec)
        if OBS.bus.active:
            OBS.bus.clock = now
            OBS.bus.emit("chaos.audit", t=now, label=label,
                         objects=audit["objects"], lost=audit["lost"],
                         under_replicated=audit["under_replicated"],
                         dirty=rec["dirty"],
                         quarantined=rec["quarantined"])
        # The metadata substrate gets the same scrutiny as the data
        # plane: its audit feeds the kv-* checkers (emits kv.audit).
        rec["kv"] = dirty_store.audit(label)

    # ------------------------------------------------------------------
    # main loop
    # ------------------------------------------------------------------
    checker_sink: Optional[CheckerSink] = None
    if check:
        checker_sink = CheckerSink(InvariantSuite(default_checkers()))
        OBS.bus.attach(checker_sink)
    run_span = OBS.spans.begin("chaos.run", seed=seed, n=n,
                               faults=len(plan))
    throughput: List[float] = []
    now = 0.0
    next_audit = audit_every
    try:
        start_phase(0)
        while now < max_duration:
            now += dt
            sim.run_until(now)          # fault actions interleave here
            manager.poll(now)
            achieved = io.step(now)
            throughput.append(achieved.get("client", 0.0))
            materialise_writes(now)
            sample_read(now)
            if now >= next_audit:
                emit_audit(now)
                next_audit += audit_every
            flow = state["client"]
            if flow is None or not flow.done:
                continue
            idx = state["phase_idx"]
            state["phase_ends"][phases[idx].name] = now
            state["client"] = None
            state["write_carry"] = 0.0
            if idx == 0:
                state["desired"] = n - off_count
                cluster.resize(min(state["desired"],
                                   n - len(state["crashed"])))
                refresh_client_coefficients()
            elif idx == 1:
                state["desired"] = n
                cluster.resize(n - len(state["crashed"]))
                refresh_client_coefficients()
                maybe_submit_reintegration(now)
            if idx + 1 < len(phases):
                state["phase_idx"] = idx + 1
                start_phase(idx + 1)
                injector.fire_trigger(phases[idx + 1].name, now)
            else:
                break

        # Drain: faults may still be scheduled (a delayed repair), and
        # preempted transfers retry until done or quarantined.
        while (now < max_duration
               and (len(io.flows) > 0 or not manager.idle
                    or sim.pending > 0)):
            now += dt
            sim.run_until(now)
            manager.poll(now)
            achieved = io.step(now)
            throughput.append(achieved.get("client", 0.0))
            if now >= next_audit:
                emit_audit(now)
                next_audit += audit_every
            if manager.idle and len(io.flows) == 0:
                maybe_submit_reintegration(now)

        dirty_store.anti_entropy()     # settle any repair debt left
        emit_audit(now, label="final")
        run_span.end(status="completed")
    except BaseException:
        run_span.end(status="failed")
        raise
    finally:
        if checker_sink is not None:
            OBS.bus.detach(checker_sink)

    violations: List[str] = []
    checkers = events_seen = 0
    if checker_sink is not None:
        violations = [v.describe() for v in checker_sink.finish()]
        checkers = len(checker_sink.suite.checkers)
        events_seen = checker_sink.suite.events_seen

    # A quarantined re-integration round can be *superseded*: a later
    # round settles the same dirty entries (each plan re-snapshots the
    # table).  Only objects still dirty or short of r copies at the end
    # are genuinely degraded.
    degraded = [oid for oid in manager.degraded_objects()
                if cluster.ech.dirty.contains_oid(oid)
                or len(cluster.stored_locations(oid)) < replicas]

    return ChaosResult(
        seed=plan.seed,
        n=n,
        replicas=replicas,
        scale=scale,
        duration=now,
        phase_ends=dict(state["phase_ends"]),
        faults=[{"t": t, "kind": a.kind, "rank": a.rank,
                 "peer": a.peer, "factor": a.factor}
                for t, a in injector.applied],
        transfers=manager.stats(),
        wasted_bytes=dict(cluster.wasted_bytes),
        lost_objects=list(cluster.lost_objects),
        degraded_objects=degraded,
        degraded_reads=state["degraded_reads"],
        unavailable_reads=state["unavailable_reads"],
        audits=audits,
        final_audit=audits[-1] if audits else {},
        dirty_backlog=len(cluster.ech.dirty),
        violations=violations,
        checkers=checkers,
        events_seen=events_seen,
        peak_throughput=max(throughput) if throughput else 0.0,
        mean_throughput=(sum(throughput) / len(throughput)
                         if throughput else 0.0),
    )


# ----------------------------------------------------------------------
# reporting
# ----------------------------------------------------------------------
def render_chaos_report(result: ChaosResult) -> str:
    """The run as a markdown chaos report."""
    lines: List[str] = [
        "# chaos report",
        "",
        f"- seed: {result.seed}",
        f"- cluster: n={result.n}, r={result.replicas}, "
        f"scale={result.scale}",
        f"- duration: {result.duration:.0f} s; phase ends: "
        + (", ".join(f"{k}={v:.0f}s"
                     for k, v in result.phase_ends.items()) or "none"),
        f"- client throughput: peak "
        f"{result.peak_throughput / 1e6:.1f} MB/s, mean "
        f"{result.mean_throughput / 1e6:.1f} MB/s",
        "",
        "## fault timeline",
        "",
    ]
    if result.faults:
        lines += ["| t(s) | action | detail |", "| --- | --- | --- |"]
        for f in result.faults:
            detail = []
            if f.get("rank") is not None:
                detail.append(f"rank {f['rank']}")
            if f.get("peer") is not None:
                detail.append(f"peer {f['peer']}")
            if f.get("factor") is not None:
                detail.append(f"factor {f['factor']}")
            lines.append(f"| {float(f['t']):.1f} | {f['kind']} | "
                         f"{', '.join(detail)} |")
    else:
        lines.append("no faults fired.")
    lines += [
        "",
        "## transfers",
        "",
        "| submitted | completed | retries | interrupted | quarantined |",
        "| --- | --- | --- | --- | --- |",
        f"| {result.transfers.get('submitted', 0)} "
        f"| {result.transfers.get('completed', 0)} "
        f"| {result.transfers.get('retries', 0)} "
        f"| {result.transfers.get('interrupted', 0)} "
        f"| {result.transfers.get('quarantined', 0)} |",
        "",
        "wasted (preempted) bytes: "
        + (", ".join(f"{k}: {v / 1e6:.1f} MB"
                     for k, v in sorted(result.wasted_bytes.items()))
           or "none"),
        "",
        "## replication audits",
        "",
        "| t(s) | objects | lost | under-replicated | dirty | quarantined |",
        "| --- | --- | --- | --- | --- | --- |",
    ]
    shown = (result.audits if len(result.audits) <= 12
             else result.audits[:6] + result.audits[-6:])
    for a in shown:
        lines.append(
            f"| {float(a['t']):.0f} | {a['objects']} | {a['lost']} "
            f"| {a['under_replicated']} | {a['dirty']} "
            f"| {a['quarantined']} |")
    if len(result.audits) > 12:
        lines.append(f"(… {len(result.audits) - 12} audits elided …)")
    lines += ["", "## invariants", ""]
    if result.checkers:
        if result.violations:
            lines.append(f"{len(result.violations)} violation(s) across "
                         f"{result.checkers} checkers:")
            lines += [f"- {v}" for v in result.violations]
        else:
            lines.append(f"all {result.checkers} checkers hold over "
                         f"{result.events_seen} events.")
    else:
        lines.append("checkers not attached (check=False).")
    verdict = "OK" if result.ok else "DEGRADED"
    lines += [
        "",
        "## outcome",
        "",
        f"- verdict: **{verdict}**",
        f"- lost objects: {len(result.lost_objects)}",
        f"- quarantined (degraded) objects: "
        f"{len(result.degraded_objects)}",
        f"- degraded reads served via fallback: {result.degraded_reads} "
        f"(unavailable: {result.unavailable_reads})",
        f"- dirty backlog at end: {result.dirty_backlog}",
        f"- final audit: lost={result.final_audit.get('lost', '?')}, "
        f"under_replicated="
        f"{result.final_audit.get('under_replicated', '?')}",
    ]
    return "\n".join(lines)
