"""The fault injector: a :class:`~repro.faults.plan.FaultPlan`
expanded into atomic actions on the discrete-event simulator.

Every plan event becomes two scheduled actions (``crash`` + ``repair``,
``slow_disk.start`` + ``slow_disk.end``, ``link_loss.start`` +
``link_loss.end``).  Because the actions ride the
:class:`~repro.simulation.engine.Simulator` heap — time plus insertion
sequence, both pure functions of the plan — a same-seed run replays
the identical fault sequence, which is what makes chaos traces
byte-identical across runs.

The injector owns the *ambient* fault state the IO model consults
each tick (:meth:`FaultInjector.capacity_factors`,
:meth:`FaultInjector.link_blocked`); the *discrete* consequences
(crashing the cluster, preempting transfers) are the harness's
business via the handler callback.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import (
    Callable,
    Dict,
    FrozenSet,
    Iterable,
    List,
    Optional,
    Set,
    Tuple,
)

from repro.faults.plan import FaultEvent, FaultPlan
from repro.obs.runtime import OBS
from repro.simulation.engine import Simulator

__all__ = ["FaultAction", "FaultInjector"]

Handler = Callable[["FaultAction"], None]


@dataclass(frozen=True)
class FaultAction:
    """One atomic state change derived from a plan event.

    ``source`` is the index of the originating
    :class:`~repro.faults.plan.FaultEvent` in the plan — provenance
    for traces and a deterministic tie-break for same-time actions.
    """

    kind: str  # crash | repair | slow_disk.{start,end} | link_loss.{start,end}
    source: int
    rank: Optional[int] = None
    peer: Optional[int] = None
    factor: Optional[float] = None


class FaultInjector:
    """Arms a plan on a simulator and tracks the ambient fault state."""

    def __init__(self, plan: FaultPlan) -> None:
        self.plan = plan
        self._sim: Optional[Simulator] = None
        self._handler: Optional[Handler] = None
        self._fired_triggers: Set[str] = set()
        #: rank -> stack of active degradation factors (overlapping
        #: windows compose by worst-case: min of the stack).
        self._slow: Dict[int, List[float]] = {}
        #: frozenset({a, b}) -> active loss-window count.
        self._lost_links: Dict[FrozenSet[int], int] = {}
        #: (time, action) log of everything injected, in firing order.
        self.applied: List[Tuple[float, FaultAction]] = []
        #: Bumped on every fired action — composes into the IO model's
        #: capacity token so a tick after *any* injection (conservative
        #: but cheap) re-reads capacities instead of reusing a cached
        #: allocation.
        self.generation = 0

    # ------------------------------------------------------------------
    # arming
    # ------------------------------------------------------------------
    def _expand(self, idx: int, event: FaultEvent,
                base: float) -> List[Tuple[float, FaultAction]]:
        t0 = base + event.time
        if event.kind == "crash":
            return [
                (t0, FaultAction("crash", idx, rank=event.rank)),
                (t0 + event.repair_after,
                 FaultAction("repair", idx, rank=event.rank)),
            ]
        if event.kind == "slow_disk":
            return [
                (t0, FaultAction("slow_disk.start", idx, rank=event.rank,
                                 factor=event.factor)),
                (t0 + event.duration,
                 FaultAction("slow_disk.end", idx, rank=event.rank,
                             factor=event.factor)),
            ]
        return [
            (t0, FaultAction("link_loss.start", idx, rank=event.rank,
                             peer=event.peer)),
            (t0 + event.duration,
             FaultAction("link_loss.end", idx, rank=event.rank,
                         peer=event.peer)),
        ]

    def arm(self, sim: Simulator, handler: Handler) -> int:
        """Schedule every absolute-time event on *sim*; triggered
        events wait for :meth:`fire_trigger`.  Returns the number of
        actions scheduled."""
        self._sim = sim
        self._handler = handler
        count = 0
        for idx, event in enumerate(self.plan.events):
            if event.trigger is not None:
                continue
            for t, action in self._expand(idx, event, 0.0):
                sim.schedule_at(t, self._fire, action)
                count += 1
        return count

    def fire_trigger(self, name: str, now: Optional[float] = None) -> int:
        """The harness observed trigger *name* (e.g. the first
        re-integration transfer started): schedule that trigger's
        events at their offsets from *now*.  Only the first firing of
        each trigger arms anything — "2 s after re-integration starts"
        means the first start, not every retry."""
        if self._sim is None:
            raise RuntimeError("injector not armed; call arm() first")
        if name in self._fired_triggers:
            return 0
        self._fired_triggers.add(name)
        base = self._sim.now if now is None else now
        count = 0
        for idx, event in enumerate(self.plan.events):
            if event.trigger != name:
                continue
            for t, action in self._expand(idx, event, base):
                self._sim.schedule_at(max(t, self._sim.now),
                                      self._fire, action)
                count += 1
        return count

    # ------------------------------------------------------------------
    # firing
    # ------------------------------------------------------------------
    def _fire(self, action: FaultAction) -> None:
        now = self._sim.now if self._sim is not None else 0.0
        self.generation += 1
        if action.kind == "slow_disk.start":
            self._slow.setdefault(action.rank, []).append(action.factor)
        elif action.kind == "slow_disk.end":
            stack = self._slow.get(action.rank, [])
            if action.factor in stack:
                stack.remove(action.factor)
            if not stack:
                self._slow.pop(action.rank, None)
        elif action.kind == "link_loss.start":
            key = frozenset((action.rank, action.peer))
            self._lost_links[key] = self._lost_links.get(key, 0) + 1
        elif action.kind == "link_loss.end":
            key = frozenset((action.rank, action.peer))
            left = self._lost_links.get(key, 0) - 1
            if left > 0:
                self._lost_links[key] = left
            else:
                self._lost_links.pop(key, None)
        self.applied.append((now, action))
        OBS.metrics.inc("faults.injected")
        if OBS.bus.active:
            payload = {k: v for k, v in (("rank", action.rank),
                                         ("peer", action.peer),
                                         ("factor", action.factor))
                       if v is not None}
            OBS.bus.emit("fault.inject", t=now, action=action.kind,
                         source=action.source, **payload)
        if self._handler is not None:
            self._handler(action)

    # ------------------------------------------------------------------
    # ambient state
    # ------------------------------------------------------------------
    def disk_factor(self, rank: int) -> float:
        """Current bandwidth multiplier for *rank* (1.0 = healthy)."""
        stack = self._slow.get(rank)
        return min(stack) if stack else 1.0

    def capacity_factors(self) -> Dict[int, float]:
        """Degradation factors for every currently-degraded rank —
        feed straight into
        :func:`~repro.simulation.bandwidth.apply_capacity_factors`."""
        return {rank: min(stack) for rank, stack in self._slow.items()}

    def blocked_pairs(self) -> FrozenSet[FrozenSet[int]]:
        """Rank pairs whose link is currently down."""
        return frozenset(self._lost_links)

    def link_blocked(self, ranks: Iterable[int]) -> bool:
        """Would a transfer spanning *ranks* cross a dead link?"""
        rs = set(ranks)
        return any(pair <= rs for pair in self._lost_links)
