"""Retry policy: capped exponential backoff with deterministic jitter.

Preempted transfers (crash, link loss) re-enqueue under this policy;
after ``max_attempts`` launches the work is *quarantined* — surfaced
in the chaos report as degraded objects rather than retried forever.

Jitter desynchronises retries (the classic thundering-herd fix) but
must not destroy replayability, so instead of a PRNG it is derived
from an FNV-1a hash of ``(seed, key, attempt)`` — the same transfer's
n-th retry always backs off by the same amount.

Examples
--------
>>> p = RetryPolicy(base_delay=0.5, factor=2.0, max_delay=4.0,
...                 max_attempts=4, jitter=0.0)
>>> [p.delay(a, "job") for a in (1, 2, 3, 4, 5)]
[0.5, 1.0, 2.0, 4.0, 4.0]
>>> p.exhausted(3), p.exhausted(4)
(False, True)
>>> jittered = RetryPolicy(jitter=0.5, seed=7)
>>> jittered.delay(2, "a") == jittered.delay(2, "a")   # replayable
True
>>> jittered.delay(2, "a") != jittered.delay(2, "b")   # desynchronised
True
"""

from __future__ import annotations

import math
from dataclasses import dataclass

from repro.hashring.hashing import hash64

__all__ = ["RetryPolicy"]


@dataclass(frozen=True)
class RetryPolicy:
    """Backoff schedule for preempted transfers.

    Attributes
    ----------
    base_delay:
        Seconds before the first retry.
    factor:
        Multiplier per further attempt (>= 1).
    max_delay:
        Backoff ceiling in seconds.
    max_attempts:
        Launch budget per transfer; one more preemption quarantines it.
    jitter:
        Fraction of the backoff shaved off deterministically
        (0 = none; 0.25 means the delay lands in ``[0.75*d, d]``).
    seed:
        Namespaces the jitter hash so two chaos runs with different
        seeds desynchronise differently.
    """

    base_delay: float = 0.5
    factor: float = 2.0
    max_delay: float = 8.0
    max_attempts: int = 5
    jitter: float = 0.25
    seed: int = 0

    def __post_init__(self) -> None:
        # NaN compares false against everything, so the range checks
        # below would silently wave a NaN through — demand finiteness
        # explicitly for every float field.
        if self.base_delay <= 0 or not math.isfinite(self.base_delay):
            raise ValueError("base_delay must be positive and finite")
        if self.factor < 1.0 or not math.isfinite(self.factor):
            raise ValueError("factor must be >= 1 and finite")
        if self.max_delay < self.base_delay \
                or not math.isfinite(self.max_delay):
            raise ValueError("max_delay must be >= base_delay and finite")
        if self.max_attempts < 1:
            raise ValueError("max_attempts must be >= 1")
        if not 0.0 <= self.jitter < 1.0:
            raise ValueError("jitter must be in [0, 1)")

    # ------------------------------------------------------------------
    def delay(self, attempt: int, key: str = "") -> float:
        """Seconds to wait before retry number *attempt* (1-based: the
        delay after the first failed launch is ``delay(1)``).

        With ``d = min(base_delay * factor**(attempt-1), max_delay)``,
        the result always lands in ``[(1-jitter)*d, d]`` — and hence
        in ``(0, max_delay]`` — for every valid policy (pinned by the
        retry tests at the ``jitter=0`` and ``factor=1`` boundaries).
        """
        if attempt < 1:
            raise ValueError("attempt is 1-based")
        raw = min(self.base_delay * self.factor ** (attempt - 1),
                  self.max_delay)
        if self.jitter == 0.0:
            return raw
        u = hash64(f"{self.seed}:{key}:{attempt}") / 2.0 ** 64
        return raw * (1.0 - self.jitter * u)

    def exhausted(self, attempts: int) -> bool:
        """Has the launch budget been spent?"""
        return attempts >= self.max_attempts
