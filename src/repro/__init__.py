"""repro — reproduction of *Elastic Consistent Hashing for Distributed
Storage Systems* (Wei Xie & Yong Chen, IPDPS 2017).

Public API tour
---------------
:class:`repro.core.ElasticConsistentHash`
    The paper's contribution: primary-server placement on an equal-work
    ring with membership versioning and dirty tracking.
:class:`repro.core.ReintegrationEngine`
    Selective data re-integration (Algorithm 2).
:class:`repro.cluster.ElasticCluster`
    A Sheepdog-like object-storage cluster driving the algorithm, with
    simulated servers, recovery and migration.
:mod:`repro.simulation`
    Discrete-event engine + fair-share bandwidth model (the testbed
    substitute).
:mod:`repro.workloads`
    The 3-phase Filebench-like benchmark and synthetic Cloudera-style
    traces.
:mod:`repro.policy`
    Trace-driven elasticity analysis producing the paper's Figures 8/9
    and Table II.

See DESIGN.md for the full system inventory and the per-experiment
index, and EXPERIMENTS.md for paper-vs-measured results.
"""

from repro.core import (
    ElasticConsistentHash,
    EqualWorkLayout,
    ReintegrationEngine,
    DirtyTable,
    MembershipTable,
    VersionHistory,
    PlacementResult,
    place_original,
    place_primary,
    primary_count,
    equal_work_weights,
)
from repro.hashring import HashRing

__version__ = "1.0.0"

__all__ = [
    "ElasticConsistentHash",
    "EqualWorkLayout",
    "ReintegrationEngine",
    "DirtyTable",
    "MembershipTable",
    "VersionHistory",
    "PlacementResult",
    "place_original",
    "place_primary",
    "primary_count",
    "equal_work_weights",
    "HashRing",
    "__version__",
]
