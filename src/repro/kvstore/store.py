"""A single-node, in-memory key-value store with Redis LIST semantics.

Only the data types the reproduction needs are implemented — strings
and lists — but their edge-case behaviour follows Redis precisely
(verified by the test suite against the documented Redis semantics):

* reading a missing key returns ``None`` / empty, never raises;
* list commands against a string key (and vice versa) raise
  :class:`WrongTypeError`, mirroring Redis ``WRONGTYPE``;
* a list that becomes empty is deleted (``EXISTS`` turns false);
* ``LRANGE`` accepts negative and out-of-range indices with Redis'
  clamping rules.

The store is deliberately unsynchronised: the simulator is single-
threaded and deterministic, and the paper's consistency argument does
not rest on the KV store's concurrency behaviour.
"""

from __future__ import annotations

from collections import deque
from typing import Any, Deque, Dict, Iterator, List, Optional

__all__ = ["KVStore", "WrongTypeError"]


class WrongTypeError(TypeError):
    """Operation against a key holding the wrong kind of value
    (Redis ``WRONGTYPE``)."""


class KVStore:
    """One in-memory store instance.

    Examples
    --------
    >>> kv = KVStore()
    >>> kv.rpush("dirty", "a", "b")
    2
    >>> kv.lrange("dirty", 0, -1)
    ['a', 'b']
    >>> kv.lpop("dirty")
    'a'
    """

    def __init__(self) -> None:
        self._strings: Dict[str, Any] = {}
        self._lists: Dict[str, Deque[Any]] = {}

    # ------------------------------------------------------------------
    # generic
    # ------------------------------------------------------------------
    def exists(self, key: str) -> bool:
        return key in self._strings or key in self._lists

    def delete(self, key: str) -> bool:
        """Remove *key* of any type; returns whether it existed."""
        found = self._strings.pop(key, _MISSING) is not _MISSING
        found = (self._lists.pop(key, None) is not None) or found
        return found

    def keys(self) -> List[str]:
        return list(self._strings) + list(self._lists)

    def flushall(self) -> None:
        self._strings.clear()
        self._lists.clear()

    def type_of(self, key: str) -> Optional[str]:
        if key in self._strings:
            return "string"
        if key in self._lists:
            return "list"
        return None

    def dbsize(self) -> int:
        return len(self._strings) + len(self._lists)

    # ------------------------------------------------------------------
    # strings
    # ------------------------------------------------------------------
    def set(self, key: str, value: Any) -> None:
        """SET — overwrites any existing value, including a list
        (Redis SET replaces keys of any type)."""
        self._lists.pop(key, None)
        self._strings[key] = value

    def get(self, key: str) -> Any:
        if key in self._lists:
            raise WrongTypeError(f"key {key!r} holds a list")
        return self._strings.get(key)

    def incr(self, key: str, amount: int = 1) -> int:
        """INCRBY — initialises a missing key to 0 first."""
        if key in self._lists:
            raise WrongTypeError(f"key {key!r} holds a list")
        cur = self._strings.get(key, 0)
        if not isinstance(cur, int):
            raise WrongTypeError(f"key {key!r} is not an integer")
        cur += amount
        self._strings[key] = cur
        return cur

    # ------------------------------------------------------------------
    # lists
    # ------------------------------------------------------------------
    def _list_for_write(self, key: str) -> Deque[Any]:
        if key in self._strings:
            raise WrongTypeError(f"key {key!r} holds a string")
        lst = self._lists.get(key)
        if lst is None:
            lst = deque()
            self._lists[key] = lst
        return lst

    def _list_for_read(self, key: str) -> Optional[Deque[Any]]:
        if key in self._strings:
            raise WrongTypeError(f"key {key!r} holds a string")
        return self._lists.get(key)

    def rpush(self, key: str, *values: Any) -> int:
        """RPUSH — append; returns the new length.  This is how dirty
        entries enter the table (§IV)."""
        if not values:
            raise ValueError("rpush requires at least one value")
        lst = self._list_for_write(key)
        lst.extend(values)
        return len(lst)

    def lpush(self, key: str, *values: Any) -> int:
        """LPUSH — prepend (values land in reverse order, as in Redis)."""
        if not values:
            raise ValueError("lpush requires at least one value")
        lst = self._list_for_write(key)
        for v in values:
            lst.appendleft(v)
        return len(lst)

    def lpop(self, key: str) -> Any:
        """LPOP — pop from the head; ``None`` on missing/empty key.
        Used to consume a dirty entry once it is fully re-integrated."""
        lst = self._list_for_read(key)
        if not lst:
            return None
        value = lst.popleft()
        if not lst:
            del self._lists[key]
        return value

    def rpop(self, key: str) -> Any:
        lst = self._list_for_read(key)
        if not lst:
            return None
        value = lst.pop()
        if not lst:
            del self._lists[key]
        return value

    def llen(self, key: str) -> int:
        lst = self._list_for_read(key)
        return len(lst) if lst else 0

    def lindex(self, key: str, index: int) -> Any:
        lst = self._list_for_read(key)
        if not lst:
            return None
        try:
            return lst[index]
        except IndexError:
            return None

    def lrange(self, key: str, start: int, stop: int) -> List[Any]:
        """LRANGE with Redis index semantics: *stop* is inclusive,
        negative indices count from the tail, and out-of-range bounds
        clamp rather than raise.  This is the non-destructive fetch used
        while the cluster is not yet at full power (§IV)."""
        lst = self._list_for_read(key)
        if not lst:
            return []
        n = len(lst)
        if start < 0:
            start = max(n + start, 0)
        if stop < 0:
            stop = n + stop
        stop = min(stop, n - 1)
        if start > stop or start >= n:
            return []
        # deque slicing is O(n) anyway; materialise once.
        seq = list(lst)
        return seq[start:stop + 1]

    def lrem(self, key: str, count: int, value: Any) -> int:
        """LREM — remove up to *count* occurrences of *value* (all when
        count == 0; from the tail when count < 0)."""
        lst = self._list_for_read(key)
        if not lst:
            return 0
        seq = list(lst)
        removed = 0
        if count >= 0:
            limit = count if count > 0 else len(seq)
            out = []
            for item in seq:
                if item == value and removed < limit:
                    removed += 1
                else:
                    out.append(item)
        else:
            limit = -count
            out_rev = []
            for item in reversed(seq):
                if item == value and removed < limit:
                    removed += 1
                else:
                    out_rev.append(item)
            out = list(reversed(out_rev))
        if out:
            self._lists[key] = deque(out)
        else:
            del self._lists[key]
        return removed

    def lists_iter(self, key: str) -> Iterator[Any]:
        """Non-Redis convenience: iterate a list without copying."""
        lst = self._list_for_read(key)
        return iter(lst) if lst else iter(())


_MISSING = object()
