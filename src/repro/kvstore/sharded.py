"""A distributed key-value store: keys hash-sharded over several
:class:`~repro.kvstore.store.KVStore` instances.

§III-E-2: "The dirty table is maintained in a distributed key-value
store across the storage servers to balance the storage usage and the
lookup load."  The wrapper routes every command to the shard owning the
key via a small consistent-hash ring, so shard membership can follow
cluster membership without rehashing every key.

Whole-keyspace operations (``keys``, ``dbsize``, ``flushall``) fan out
to all shards.  A *list* key lives entirely on one shard — Redis LIST
semantics are per-key, which is exactly what the dirty table needs
(it keeps one list per object, routed by OID, see
:class:`repro.core.dirty_table.DirtyTable`).

Shard membership can change at runtime: :meth:`ShardedKVStore.add_shard`
and :meth:`ShardedKVStore.remove_shard` rebuild the ring and migrate
**only the remapped keys** — the consistent-hash minimal-movement
property the whole paper is built on, applied to the metadata store
itself (§III-E-2's table follows cluster membership).
"""

from __future__ import annotations

from typing import Any, Dict, Hashable, List, Sequence

from repro.hashring.ring import HashRing
from repro.kvstore.store import KVStore

__all__ = ["ShardedKVStore"]


class ShardedKVStore:
    """Consistent-hash-sharded façade over N independent stores.

    Parameters
    ----------
    shard_ids:
        Identifiers of the shard servers (usually the storage-server
        ids hosting the table).
    vnodes_per_shard:
        Ring weight per shard; the default gives <5 % imbalance for
        typical shard counts.
    """

    def __init__(self, shard_ids: Sequence[Hashable],
                 vnodes_per_shard: int = 64) -> None:
        if not shard_ids:
            raise ValueError("at least one shard required")
        self._ring = HashRing()
        self._shards: Dict[Hashable, KVStore] = {}
        self._vnodes_per_shard = vnodes_per_shard
        for sid in shard_ids:
            self._ring.add_server(sid, weight=vnodes_per_shard)
            self._shards[sid] = KVStore()

    # ------------------------------------------------------------------
    def shard_for(self, key: str) -> Hashable:
        """The shard id owning *key*."""
        return self._ring.successor(key)

    def store_for(self, key: str) -> KVStore:
        return self._shards[self.shard_for(key)]

    @property
    def shard_ids(self) -> List[Hashable]:
        return list(self._shards)

    def shard(self, shard_id: Hashable) -> KVStore:
        """Direct access to one shard's store (used by tests and by the
        dirty table's per-shard scan)."""
        return self._shards[shard_id]

    # ------------------------------------------------------------------
    # membership — minimal-movement migration
    # ------------------------------------------------------------------
    def add_shard(self, shard_id: Hashable) -> int:
        """Add an (empty) shard and migrate the keys it now owns.

        Only keys whose ring successor changed move, and by the
        consistent-hash minimal-movement property every one of them
        moves *to the new shard* — no key changes hands between the
        surviving shards.  Returns the number of keys migrated.
        """
        if shard_id in self._shards:
            raise ValueError(f"shard {shard_id!r} already present")
        self._ring.add_server(shard_id, weight=self._vnodes_per_shard)
        self._shards[shard_id] = KVStore()
        moved = 0
        # Sorted-id order so the migrated keys land on the new shard in
        # an order independent of shard insertion history.
        for sid in sorted(self._shards, key=str):
            if sid == shard_id:
                continue
            store = self._shards[sid]
            for key in store.keys():
                owner = self.shard_for(key)
                if owner != sid:
                    self._move_key(key, store, self._shards[owner])
                    moved += 1
        return moved

    def remove_shard(self, shard_id: Hashable) -> int:
        """Drop a shard, migrating every key it held to the shard that
        now owns it.  Keys on the surviving shards do not move (their
        ring successor is unchanged).  Returns the number of keys
        migrated."""
        if shard_id not in self._shards:
            raise ValueError(f"shard {shard_id!r} not present")
        if len(self._shards) == 1:
            raise ValueError("cannot remove the last shard")
        self._ring.remove_server(shard_id)
        source = self._shards.pop(shard_id)
        moved = 0
        for key in source.keys():
            self._move_key(key, source, self.store_for(key))
            moved += 1
        return moved

    @staticmethod
    def _move_key(key: str, source: KVStore, dest: KVStore) -> None:
        """Copy one key (string or list) between stores, preserving
        list order, then delete the original."""
        if source.type_of(key) == "string":
            dest.set(key, source.get(key))
        else:
            values = source.lrange(key, 0, -1)
            if values:
                dest.rpush(key, *values)
        source.delete(key)

    # ------------------------------------------------------------------
    # routed commands — same signatures as KVStore
    # ------------------------------------------------------------------
    def set(self, key: str, value: Any) -> None:
        self.store_for(key).set(key, value)

    def get(self, key: str) -> Any:
        return self.store_for(key).get(key)

    def incr(self, key: str, amount: int = 1) -> int:
        return self.store_for(key).incr(key, amount)

    def delete(self, key: str) -> bool:
        return self.store_for(key).delete(key)

    def exists(self, key: str) -> bool:
        return self.store_for(key).exists(key)

    def rpush(self, key: str, *values: Any) -> int:
        return self.store_for(key).rpush(key, *values)

    def lpush(self, key: str, *values: Any) -> int:
        return self.store_for(key).lpush(key, *values)

    def lpop(self, key: str) -> Any:
        return self.store_for(key).lpop(key)

    def rpop(self, key: str) -> Any:
        return self.store_for(key).rpop(key)

    def llen(self, key: str) -> int:
        return self.store_for(key).llen(key)

    def lindex(self, key: str, index: int) -> Any:
        return self.store_for(key).lindex(key, index)

    def lrange(self, key: str, start: int, stop: int) -> List[Any]:
        return self.store_for(key).lrange(key, start, stop)

    def lrem(self, key: str, count: int, value: Any) -> int:
        return self.store_for(key).lrem(key, count, value)

    # ------------------------------------------------------------------
    # fan-out commands
    # ------------------------------------------------------------------
    def _sorted_shards(self) -> List[KVStore]:
        """Shards in sorted-id order: fan-out results must not depend
        on the order shards happened to be added in (two stores that
        hold the same data must answer identically)."""
        return [self._shards[sid]
                for sid in sorted(self._shards, key=str)]

    def keys(self) -> List[str]:
        out: List[str] = []
        for store in self._sorted_shards():
            out.extend(store.keys())
        return out

    def dbsize(self) -> int:
        return sum(store.dbsize() for store in self._sorted_shards())

    def flushall(self) -> None:
        for store in self._sorted_shards():
            store.flushall()
