"""A distributed key-value store: keys hash-sharded over several
:class:`~repro.kvstore.store.KVStore` instances.

§III-E-2: "The dirty table is maintained in a distributed key-value
store across the storage servers to balance the storage usage and the
lookup load."  The wrapper routes every command to the shard owning the
key via a small consistent-hash ring, so shard membership can follow
cluster membership without rehashing every key.

Whole-keyspace operations (``keys``, ``dbsize``, ``flushall``) fan out
to all shards.  A *list* key lives entirely on one shard — Redis LIST
semantics are per-key, which is exactly what the dirty table needs
(it shards the table itself into one list per shard, see
:class:`repro.core.dirty_table.DirtyTable`).
"""

from __future__ import annotations

from typing import Any, Dict, Hashable, List, Sequence

from repro.hashring.ring import HashRing
from repro.kvstore.store import KVStore

__all__ = ["ShardedKVStore"]


class ShardedKVStore:
    """Consistent-hash-sharded façade over N independent stores.

    Parameters
    ----------
    shard_ids:
        Identifiers of the shard servers (usually the storage-server
        ids hosting the table).
    vnodes_per_shard:
        Ring weight per shard; the default gives <5 % imbalance for
        typical shard counts.
    """

    def __init__(self, shard_ids: Sequence[Hashable],
                 vnodes_per_shard: int = 64) -> None:
        if not shard_ids:
            raise ValueError("at least one shard required")
        self._ring = HashRing()
        self._shards: Dict[Hashable, KVStore] = {}
        for sid in shard_ids:
            self._ring.add_server(sid, weight=vnodes_per_shard)
            self._shards[sid] = KVStore()

    # ------------------------------------------------------------------
    def shard_for(self, key: str) -> Hashable:
        """The shard id owning *key*."""
        return self._ring.successor(key)

    def store_for(self, key: str) -> KVStore:
        return self._shards[self.shard_for(key)]

    @property
    def shard_ids(self) -> List[Hashable]:
        return list(self._shards)

    def shard(self, shard_id: Hashable) -> KVStore:
        """Direct access to one shard's store (used by tests and by the
        dirty table's per-shard scan)."""
        return self._shards[shard_id]

    # ------------------------------------------------------------------
    # routed commands — same signatures as KVStore
    # ------------------------------------------------------------------
    def set(self, key: str, value: Any) -> None:
        self.store_for(key).set(key, value)

    def get(self, key: str) -> Any:
        return self.store_for(key).get(key)

    def incr(self, key: str, amount: int = 1) -> int:
        return self.store_for(key).incr(key, amount)

    def delete(self, key: str) -> bool:
        return self.store_for(key).delete(key)

    def exists(self, key: str) -> bool:
        return self.store_for(key).exists(key)

    def rpush(self, key: str, *values: Any) -> int:
        return self.store_for(key).rpush(key, *values)

    def lpush(self, key: str, *values: Any) -> int:
        return self.store_for(key).lpush(key, *values)

    def lpop(self, key: str) -> Any:
        return self.store_for(key).lpop(key)

    def rpop(self, key: str) -> Any:
        return self.store_for(key).rpop(key)

    def llen(self, key: str) -> int:
        return self.store_for(key).llen(key)

    def lindex(self, key: str, index: int) -> Any:
        return self.store_for(key).lindex(key, index)

    def lrange(self, key: str, start: int, stop: int) -> List[Any]:
        return self.store_for(key).lrange(key, start, stop)

    def lrem(self, key: str, count: int, value: Any) -> int:
        return self.store_for(key).lrem(key, count, value)

    # ------------------------------------------------------------------
    # fan-out commands
    # ------------------------------------------------------------------
    def keys(self) -> List[str]:
        out: List[str] = []
        for store in self._shards.values():
            out.extend(store.keys())
        return out

    def dbsize(self) -> int:
        return sum(store.dbsize() for store in self._shards.values())

    def flushall(self) -> None:
        for store in self._shards.values():
            store.flushall()
