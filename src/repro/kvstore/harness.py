"""Black-box scenario harness for the replicated KV store.

Two layers, both deterministic:

* **scenario suites** — CSE138-style black-box checks
  (:func:`scenario_kvs`, :func:`scenario_view_change`,
  :func:`scenario_sharding`, collected in :data:`SCENARIOS`): each
  drives a fresh :class:`~repro.kvstore.replicated.ReplicatedKVStore`
  through one behavioural contract (basic kv semantics, two-step view
  changes, minimal-remap resharding) purely through the public API and
  returns a summary dict;
* **the churn run** — :func:`run_kv_churn`: a seeded client
  population hammers the store through live membership churn
  (``propose_view``/``commit_view`` every ``churn_every`` seconds)
  while a :class:`~repro.faults.injector.FaultInjector` crashes nodes
  and drops links per a :class:`~repro.faults.plan.FaultPlan`, failed
  writes retry under a :class:`~repro.faults.retry.RetryPolicy` until
  acked or quarantined, and the online consistency checkers
  (:mod:`repro.obs.invariants`) watch the ``kv.*`` event stream live.

All randomness flows from the seed through one
``numpy.random.Generator`` plus the plan generator, so a same-seed run
emits a byte-identical trace — the property the CI ``kv-churn-smoke``
job asserts with ``sha256sum``.  ``python -m repro kvchurn`` renders
the result via :func:`render_kv_churn_report` and exits 1 unless
:attr:`KVChurnResult.ok`.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional

import numpy as np

from repro.faults.injector import FaultAction, FaultInjector
from repro.faults.plan import FaultPlan
from repro.faults.retry import RetryPolicy
from repro.kvstore.replicated import (
    NoQuorumError,
    ReplicatedKVStore,
    StaleSessionError,
)
from repro.obs.invariants import CheckerSink, InvariantSuite, default_checkers
from repro.obs.runtime import OBS
from repro.simulation.engine import Simulator

__all__ = [
    "KVChurnResult",
    "run_kv_churn",
    "render_kv_churn_report",
    "scenario_kvs",
    "scenario_view_change",
    "scenario_sharding",
    "SCENARIOS",
    "run_scenarios",
]


# ----------------------------------------------------------------------
# scenario suites (black-box, public API only)
# ----------------------------------------------------------------------
def scenario_kvs(seed: int = 0) -> Dict[str, object]:
    """Basic kv semantics through the quorum path: strings, counters,
    Redis lists, deletes, and one client's read-your-writes."""
    kv = ReplicatedKVStore([1, 2, 3, 4, 5], replicas=3)
    kv.set("greeting", "hello", client="alice")
    assert kv.get("greeting", client="alice") == "hello"
    kv.set("greeting", "world", client="alice")
    assert kv.get("greeting", client="alice") == "world"
    assert kv.incr("hits", client="alice") == 1
    assert kv.incr("hits", 9, client="alice") == 10
    kv.rpush("queue", "a", "b", client="bob")
    kv.lpush("queue", "z", client="bob")
    assert kv.lrange("queue", 0, -1, client="bob") == ["z", "a", "b"]
    assert kv.lpop("queue", client="bob") == "z"
    assert kv.rpop("queue", client="bob") == "b"
    assert kv.llen("queue", client="bob") == 1
    assert kv.delete("greeting", client="alice") is True
    assert kv.get("greeting", client="alice") is None
    assert kv.exists("greeting") is False
    assert kv.keys() == ["hits", "queue"]
    audit = kv.audit("scenario-kvs")
    assert audit["lost_acked"] == 0 and audit["under_replicated"] == 0
    return {"name": "kvs", "ok": True, "keys": kv.dbsize(),
            "writes_acked": kv.stats["writes_acked"]}


def scenario_view_change(seed: int = 0) -> Dict[str, object]:
    """Two-step view changes: grow, then shrink, the membership; data
    written under the old view stays readable under the new one, and
    every committed epoch strictly increases."""
    kv = ReplicatedKVStore([1, 2, 3], replicas=2)
    epochs = [kv.epoch]
    for i in range(8):
        kv.set(f"pre:{i}", i, client="writer")
    staged = kv.propose_view([1, 2, 3, 4])
    assert staged == kv.epoch + 1          # staged, not yet visible
    assert kv.members == (1, 2, 3)
    epochs.append(kv.commit_view())
    assert kv.members == (1, 2, 3, 4)
    for i in range(8):
        assert kv.get(f"pre:{i}", client="writer") == i
    epochs.append(kv.change_view([1, 2, 4]))
    for i in range(8):
        assert kv.get(f"pre:{i}", client="writer") == i
    assert epochs == sorted(set(epochs))   # strictly increasing
    audit = kv.audit("scenario-view-change")
    assert audit["lost_acked"] == 0 and audit["under_replicated"] == 0
    return {"name": "view-change", "ok": True, "epochs": epochs}


def scenario_sharding(seed: int = 0) -> Dict[str, object]:
    """The consistent-hash contract applied to replica sets: adding
    one node to an 8-node view must remap only a minority of keys'
    replica sets (the ring moves ~1/n of the ownership), and every key
    stays readable across the change."""
    members = list(range(1, 9))
    kv = ReplicatedKVStore(members, replicas=3)
    keyset = [f"obj:{i:04d}" for i in range(200)]
    for i, key in enumerate(keyset):
        kv.set(key, i, client="loader")
    before = {key: tuple(kv.replica_set(key)) for key in keyset}
    kv.change_view(members + [9])
    moved = sum(1 for key in keyset
                if tuple(kv.replica_set(key)) != before[key])
    # 1 new node among 9 owns ~1/9 of the ring; with R=3 a key moves
    # whenever any of its 3 successors changed, so expect ~3/9 — far
    # below the ~100% a mod-N scheme would reshuffle.
    assert moved < len(keyset) * 0.6, f"remapped {moved}/{len(keyset)}"
    for i, key in enumerate(keyset):
        assert kv.get(key, client="loader") == i
    audit = kv.audit("scenario-sharding")
    assert audit["lost_acked"] == 0 and audit["under_replicated"] == 0
    return {"name": "sharding", "ok": True, "moved": moved,
            "keys": len(keyset)}


#: name -> scenario callable, each ``f(seed) -> summary dict``.
SCENARIOS = {
    "kvs": scenario_kvs,
    "view-change": scenario_view_change,
    "sharding": scenario_sharding,
}


def run_scenarios(seed: int = 0) -> List[Dict[str, object]]:
    """Run every scenario suite; raises on the first contract breach."""
    return [fn(seed) for _name, fn in sorted(SCENARIOS.items())]


# ----------------------------------------------------------------------
# the churn run
# ----------------------------------------------------------------------
@dataclass
class KVChurnResult:
    """Everything one kv-churn run observed, for the report and tests."""

    seed: Optional[int]
    nodes: int
    replicas: int
    clients: int
    duration: float
    final_epoch: int = 0
    views_committed: int = 0
    #: Injected actions in firing order: ``{t, kind, rank, peer}``.
    faults: List[Dict[str, object]] = field(default_factory=list)
    #: Store-level op counters (acked/degraded/failed/...).
    store_stats: Dict[str, int] = field(default_factory=dict)
    ops_issued: int = 0
    retried_writes: int = 0
    quarantined_writes: int = 0
    unavailable_reads: int = 0
    audits: List[Dict[str, object]] = field(default_factory=list)
    final_audit: Dict[str, object] = field(default_factory=dict)
    violations: List[str] = field(default_factory=list)
    checkers: int = 0
    events_seen: int = 0

    @property
    def ok(self) -> bool:
        """Did the run end healthy: no invariant violations, no acked
        write lost, replication factor restored, and no client write
        quarantined (every write eventually acked)?"""
        return (not self.violations
                and self.quarantined_writes == 0
                and int(self.final_audit.get("lost_acked", 1)) == 0
                and int(self.final_audit.get("under_replicated", 1)) == 0)


def run_kv_churn(
    seed: int = 7,
    nodes: int = 5,
    replicas: int = 3,
    clients: int = 4,
    keys: int = 24,
    duration: float = 120.0,
    dt: float = 1.0,
    churn_every: float = 30.0,
    plan: Optional[FaultPlan] = None,
    audit_every: float = 10.0,
    check: bool = True,
) -> KVChurnResult:
    """Drive a seeded client population through membership churn under
    injected faults.

    Node ids are ranks ``1..nodes`` so the fault plan's ranks address
    them directly.  *plan* defaults to
    :meth:`FaultPlan.generate(seed, nodes, 0.6 * duration, ...)
    <repro.faults.plan.FaultPlan.generate>` — one crash with delayed
    repair plus one link-loss window, both inside the run, so the
    drain phase always converges.  All randomness lives in the plan
    and one ``default_rng(seed)`` stream; the run is otherwise a pure
    function of its parameters, which is what makes same-seed traces
    byte-identical.
    """
    if nodes < replicas:
        raise ValueError(f"nodes={nodes} cannot hold {replicas} replicas")
    if clients < 1:
        raise ValueError("clients must be >= 1")
    if keys < 3:
        raise ValueError("keys must be >= 3 (strings, counters, lists)")
    if plan is None:
        plan = FaultPlan.generate(seed, n=nodes,
                                  duration=max(0.6 * duration, 3 * dt),
                                  crashes=1, slow_disks=0, link_losses=1)
    plan.check_ranks(nodes)

    sim = Simulator()
    injector = FaultInjector(plan)
    policy = RetryPolicy(seed=seed if seed is not None else 0)
    store = ReplicatedKVStore(list(range(1, nodes + 1)), replicas=replicas,
                              link_blocked=injector.link_blocked,
                              on_no_quorum="raise")
    rng = np.random.default_rng(seed)
    client_ids = [f"c{i}" for i in range(1, clients + 1)]
    # Typed keyspace (strings / counters / lists) so the op mix never
    # trips WrongTypeError.
    per_kind = max(keys // 3, 1)
    str_keys = [f"s{i:03d}" for i in range(per_kind)]
    ctr_keys = [f"n{i:03d}" for i in range(per_kind)]
    list_keys = [f"q{i:03d}" for i in range(per_kind)]

    counters = {"ops": 0, "retried": 0, "quarantined": 0,
                "unavailable": 0}
    audits: List[Dict[str, object]] = []

    # ------------------------------------------------------------------
    # fault handling: crash wipes a node, repair re-admits it
    # ------------------------------------------------------------------
    def handle_fault(action: FaultAction) -> None:
        if action.kind == "crash":
            store.crash_node(action.rank)
        elif action.kind == "repair":
            store.repair_node(action.rank)
        # link_loss.* is ambient: the store consults
        # injector.link_blocked on every replica transfer.

    injector.arm(sim, handle_fault)

    # ------------------------------------------------------------------
    # client ops with retry-until-acked-or-quarantined
    # ------------------------------------------------------------------
    def write_once(client: str, op: str, key: str, value: object,
                   attempt: int) -> None:
        try:
            if op == "set":
                store.set(key, value, client=client)
            elif op == "incr":
                store.incr(key, client=client)
            elif op == "rpush":
                store.rpush(key, value, client=client)
            elif op == "lpop":
                store.lpop(key, client=client)
            else:  # delete
                store.delete(key, client=client)
        except NoQuorumError:
            if policy.exhausted(attempt):
                counters["quarantined"] += 1
                return
            counters["retried"] += 1
            delay = policy.delay(attempt, f"{client}:{key}")
            sim.schedule_at(sim.now + delay, write_once,
                            client, op, key, value, attempt + 1)

    def read_once(client: str, key: str, kind: str) -> None:
        try:
            if kind == "list":
                store.lrange(key, 0, -1, client=client)
            else:
                store.get(key, client=client)
        except (NoQuorumError, StaleSessionError):
            counters["unavailable"] += 1

    def client_tick(tick: int) -> None:
        for client in client_ids:
            counters["ops"] += 1
            roll = float(rng.random())
            if roll < 0.40:                       # read
                if rng.random() < 0.5:
                    read_once(client, str_keys[int(
                        rng.integers(len(str_keys)))], "string")
                else:
                    read_once(client, list_keys[int(
                        rng.integers(len(list_keys)))], "list")
            elif roll < 0.65:                     # string write
                key = str_keys[int(rng.integers(len(str_keys)))]
                write_once(client, "set", key, f"{client}@{tick}", 1)
            elif roll < 0.80:                     # counter bump
                key = ctr_keys[int(rng.integers(len(ctr_keys)))]
                write_once(client, "incr", key, None, 1)
            elif roll < 0.92:                     # list append
                key = list_keys[int(rng.integers(len(list_keys)))]
                write_once(client, "rpush", key, tick, 1)
            elif roll < 0.97:                     # list drain
                key = list_keys[int(rng.integers(len(list_keys)))]
                write_once(client, "lpop", key, None, 1)
            else:                                 # delete
                key = str_keys[int(rng.integers(len(str_keys)))]
                write_once(client, "delete", key, None, 1)

    # ------------------------------------------------------------------
    # membership churn: alternately retire and re-admit the top node
    # ------------------------------------------------------------------
    churn_state = {"out": False, "staged": False}
    churn_node = nodes

    def churn_step() -> None:
        """Propose the next view; the commit lands next tick (the
        explicit two-step — ops in between still run on the old
        view)."""
        if churn_state["staged"]:
            return
        members = list(store.members)
        if churn_state["out"]:
            members.append(churn_node)
        else:
            if len(members) - 1 < replicas:
                return                 # too small to shrink — grow only
            members.remove(churn_node)
        store.propose_view(sorted(members))
        churn_state["staged"] = True
        churn_state["out"] = not churn_state["out"]

    def commit_staged() -> None:
        if churn_state["staged"]:
            store.commit_view()
            churn_state["staged"] = False

    # ------------------------------------------------------------------
    # main loop
    # ------------------------------------------------------------------
    checker_sink: Optional[CheckerSink] = None
    if check:
        checker_sink = CheckerSink(InvariantSuite(default_checkers()))
        OBS.bus.attach(checker_sink)
    run_span = OBS.spans.begin("kvchurn.run", seed=seed, nodes=nodes,
                               replicas=replicas, faults=len(plan))
    now = 0.0
    next_audit = audit_every
    next_churn = churn_every
    tick = 0
    try:
        while now < duration:
            now += dt
            tick += 1
            sim.run_until(now)       # faults + write retries fire here
            if OBS.bus.active:
                OBS.bus.clock = now
            commit_staged()
            client_tick(tick)
            if now >= next_churn:
                churn_step()
                next_churn += churn_every
            if now >= next_audit:
                audits.append({"t": now, **store.audit()})
                next_audit += audit_every

        # Drain: delayed repairs and write retries may still be queued.
        while sim.pending > 0:
            now += dt
            sim.run_until(now)
            if OBS.bus.active:
                OBS.bus.clock = now
        commit_staged()
        store.anti_entropy()
        audits.append({"t": now, **store.audit("final")})
        run_span.end(status="completed")
    except BaseException:
        run_span.end(status="failed")
        raise
    finally:
        if checker_sink is not None:
            OBS.bus.detach(checker_sink)

    violations: List[str] = []
    checkers = events_seen = 0
    if checker_sink is not None:
        violations = [v.describe() for v in checker_sink.finish()]
        checkers = len(checker_sink.suite.checkers)
        events_seen = checker_sink.suite.events_seen

    return KVChurnResult(
        seed=plan.seed,
        nodes=nodes,
        replicas=replicas,
        clients=clients,
        duration=now,
        final_epoch=store.epoch,
        views_committed=store.stats["views_committed"],
        faults=[{"t": t, "kind": a.kind, "rank": a.rank, "peer": a.peer}
                for t, a in injector.applied],
        store_stats=dict(store.stats),
        ops_issued=counters["ops"],
        retried_writes=counters["retried"],
        quarantined_writes=counters["quarantined"],
        unavailable_reads=counters["unavailable"],
        audits=audits,
        final_audit=audits[-1] if audits else {},
        violations=violations,
        checkers=checkers,
        events_seen=events_seen,
    )


# ----------------------------------------------------------------------
# reporting
# ----------------------------------------------------------------------
def render_kv_churn_report(result: KVChurnResult) -> str:
    """The run as a markdown kv-churn report."""
    stats = result.store_stats
    lines: List[str] = [
        "# kv churn report",
        "",
        f"- seed: {result.seed}",
        f"- store: nodes={result.nodes}, r={result.replicas}, "
        f"clients={result.clients}",
        f"- duration: {result.duration:.0f} s; views committed: "
        f"{result.views_committed} (final epoch {result.final_epoch})",
        f"- client ops issued: {result.ops_issued} "
        f"(retries {result.retried_writes}, "
        f"quarantined {result.quarantined_writes}, "
        f"unavailable reads {result.unavailable_reads})",
        "",
        "## store counters",
        "",
        "| acked writes | degraded writes | failed writes | reads "
        "| degraded reads | failed reads | repair copies |",
        "| --- | --- | --- | --- | --- | --- | --- |",
        f"| {stats.get('writes_acked', 0)} "
        f"| {stats.get('writes_degraded', 0)} "
        f"| {stats.get('writes_failed', 0)} "
        f"| {stats.get('reads', 0)} "
        f"| {stats.get('reads_degraded', 0)} "
        f"| {stats.get('reads_failed', 0)} "
        f"| {stats.get('repair_copies', 0)} |",
        "",
        "## fault timeline",
        "",
    ]
    if result.faults:
        lines += ["| t(s) | action | detail |", "| --- | --- | --- |"]
        for f in result.faults:
            detail = []
            if f.get("rank") is not None:
                detail.append(f"rank {f['rank']}")
            if f.get("peer") is not None:
                detail.append(f"peer {f['peer']}")
            lines.append(f"| {float(f['t']):.1f} | {f['kind']} | "
                         f"{', '.join(detail)} |")
    else:
        lines.append("no faults fired.")
    lines += [
        "",
        "## consistency audits",
        "",
        "| t(s) | epoch | keys | lost acked | under-replicated |",
        "| --- | --- | --- | --- | --- |",
    ]
    shown = (result.audits if len(result.audits) <= 12
             else result.audits[:6] + result.audits[-6:])
    for a in shown:
        lines.append(f"| {float(a['t']):.0f} | {a['epoch']} | {a['keys']} "
                     f"| {a['lost_acked']} | {a['under_replicated']} |")
    if len(result.audits) > 12:
        lines.append(f"(… {len(result.audits) - 12} audits elided …)")
    lines += ["", "## invariants", ""]
    if result.checkers:
        if result.violations:
            lines.append(f"{len(result.violations)} violation(s) across "
                         f"{result.checkers} checkers:")
            lines += [f"- {v}" for v in result.violations]
        else:
            lines.append(f"all {result.checkers} checkers hold over "
                         f"{result.events_seen} events.")
    else:
        lines.append("checkers not attached (check=False).")
    verdict = "OK" if result.ok else "DEGRADED"
    lines += [
        "",
        "## outcome",
        "",
        f"- verdict: **{verdict}**",
        f"- final audit: "
        f"lost_acked={result.final_audit.get('lost_acked', '?')}, "
        f"under_replicated="
        f"{result.final_audit.get('under_replicated', '?')}",
        f"- quarantined writes: {result.quarantined_writes}",
    ]
    return "\n".join(lines)
