"""In-memory key-value store modelled on Redis, plus a hash-sharded
distributed wrapper.

The paper (§IV) keeps the dirty table in Redis as a LIST, manipulated
with RPUSH / LPOP / LRANGE, and notes the table "is maintained in a
distributed key-value store across the storage servers to balance the
storage usage and the lookup load" (§III-E-2).  :class:`KVStore`
reproduces the command surface the paper uses (and the handful of
adjacent commands the tests exercise); :class:`ShardedKVStore` spreads
keys over several stores with consistent hashing, as the deployment
described in the paper would.
"""

from repro.kvstore.store import KVStore, WrongTypeError
from repro.kvstore.sharded import ShardedKVStore

__all__ = ["KVStore", "WrongTypeError", "ShardedKVStore"]
