"""In-memory key-value store modelled on Redis, plus a hash-sharded
distributed wrapper and an R-way replicated, membership-versioned
service.

The paper (§IV) keeps the dirty table in Redis as a LIST, manipulated
with RPUSH / LPOP / LRANGE, and notes the table "is maintained in a
distributed key-value store across the storage servers to balance the
storage usage and the lookup load" (§III-E-2).  :class:`KVStore`
reproduces the command surface the paper uses (and the handful of
adjacent commands the tests exercise); :class:`ShardedKVStore` spreads
keys over several stores with consistent hashing, as the deployment
described in the paper would; :class:`ReplicatedKVStore` adds what a
real deployment cannot live without — quorum replication over
ring-successor replica sets, epoch-numbered view changes, and
anti-entropy repair — so the metadata survives the same faults
:mod:`repro.faults` injects everywhere else.  The churn harness
(:mod:`repro.kvstore.harness`) drives it through membership churn
under injected faults with the online consistency checkers attached.
"""

from repro.kvstore.store import KVStore, WrongTypeError
from repro.kvstore.sharded import ShardedKVStore
from repro.kvstore.replicated import (
    NoQuorumError,
    ReplicatedKVStore,
    Session,
    StaleSessionError,
    View,
)

#: Harness exports resolved lazily (PEP 562): the harness pulls in
#: repro.faults -> repro.cluster -> repro.core, and repro.core imports
#: this package for the dirty table's backend — an eager import here
#: would close that cycle.
_HARNESS_EXPORTS = ("KVChurnResult", "run_kv_churn",
                    "render_kv_churn_report")


def __getattr__(name):
    if name in _HARNESS_EXPORTS:
        from repro.kvstore import harness
        return getattr(harness, name)
    raise AttributeError(f"module {__name__!r} has no attribute {name!r}")

__all__ = [
    "KVStore",
    "WrongTypeError",
    "ShardedKVStore",
    "ReplicatedKVStore",
    "NoQuorumError",
    "StaleSessionError",
    "Session",
    "View",
    "KVChurnResult",
    "run_kv_churn",
    "render_kv_churn_report",
]
