"""R-way replicated, membership-versioned key-value service.

§III-E-2 keeps the dirty table "in a distributed key-value store
across the storage servers" — which means the metadata substrate must
survive exactly the faults :mod:`repro.faults` injects elsewhere: a
crashed server loses its local shard, a partition makes replicas
unreachable, and an elastic resize moves key ownership while traffic
flows.  :class:`ReplicatedKVStore` layers all of that on the existing
:class:`~repro.hashring.ring.HashRing`:

* **replica sets from ring successors** — a key's replicas are the
  first R distinct members found walking clockwise from the key's
  hash, so a membership change remaps only the keys whose successor
  list actually changed (the consistent-hash minimal-movement
  property, applied to the metadata store itself);
* **epoch-numbered views** — membership changes are explicit two-step
  :meth:`propose_view` / :meth:`commit_view` transitions; epochs only
  grow, ops always run against the last *committed* view, and the
  commit runs an anti-entropy pass so the new replica sets hold the
  newest state before the view serves reads;
* **quorum reads/writes with per-key version vectors** — every
  mutation merges the newest readable vector and bumps the
  coordinator's entry; a read gathers a quorum, returns the dominant
  reply, and repairs stale reachable replicas in place.  Client
  sessions (:class:`Session`) carry causal floors so read-your-writes
  and monotonic-reads hold across live resharding: a read that cannot
  satisfy its session floor fails (``unavailable``) instead of
  returning stale data;
* **crash/partition handling** — :meth:`crash_node` wipes a node (a
  crash loses its local data, as in
  :meth:`repro.cluster.cluster.ElasticCluster.crash_server`);
  :meth:`repair_node` re-admits it empty and immediately re-replicates
  toward it; a ``link_blocked`` predicate (wire it to
  :meth:`repro.faults.injector.FaultInjector.link_blocked`) makes
  partitions ambient;
* **degraded reads flagged as such** — a read that can only reach a
  single replica is served (sessionless or floor-satisfying) with
  ``degraded=True`` on its ``kv.read`` event, mirroring the cluster's
  degraded read path.

Every decision the consistency checkers care about is emitted as a
``kv.*`` trace event (see :mod:`repro.obs.invariants`):
``kv.view.propose`` / ``kv.view.commit``, ``kv.write.ack`` /
``kv.write.fail`` / ``kv.write.degraded``, ``kv.read`` /
``kv.read.fail``, ``kv.repair`` and ``kv.audit``.  All iteration is
over sorted structures, so a seeded run's event stream is
byte-identical across replays.

The command surface mirrors :class:`~repro.kvstore.store.KVStore`
(strings + Redis LISTs), so :class:`~repro.core.dirty_table.DirtyTable`
runs unchanged on top of either backend.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import (
    Any,
    Callable,
    Dict,
    Hashable,
    Iterable,
    List,
    Optional,
    Sequence,
    Tuple,
)

from repro.hashring.ring import HashRing
from repro.obs.runtime import OBS

__all__ = [
    "NoQuorumError",
    "StaleSessionError",
    "Session",
    "View",
    "ReplicatedKVStore",
]

NodeId = Hashable

#: A per-key version vector: ``str(node) -> write count``.  Keys are
#: stringified so the vector embeds directly in JSONL trace events.
VersionVector = Dict[str, int]


class NoQuorumError(RuntimeError):
    """A strict-mode mutation (or quorum read) could not reach enough
    replicas.  Carries the key and how many replicas answered."""

    def __init__(self, key: str, got: int, need: int) -> None:
        self.key = key
        self.got = got
        self.need = need
        super().__init__(
            f"key {key!r}: only {got} of the {need} required replicas "
            f"reachable")


class StaleSessionError(RuntimeError):
    """Every reachable replica is older than the session's causal
    floor — serving the read would break read-your-writes or
    monotonic-reads, so the store refuses instead."""


# ----------------------------------------------------------------------
# version vectors
# ----------------------------------------------------------------------
def vv_dominates(a: VersionVector, b: VersionVector) -> bool:
    """True when *a* >= *b* componentwise (a reflects every write b
    does)."""
    return all(a.get(node, 0) >= count for node, count in b.items())


def vv_merge(a: VersionVector, b: VersionVector) -> VersionVector:
    out = dict(a)
    for node, count in b.items():
        if count > out.get(node, 0):
            out[node] = count
    return out


def _vv_sortkey(vv: VersionVector) -> Tuple[int, Tuple[Tuple[str, int], ...]]:
    """Deterministic total order extending dominance: by total count,
    then lexicographically — concurrent vectors tie-break identically
    in every process."""
    return (sum(vv.values()), tuple(sorted(vv.items())))


# ----------------------------------------------------------------------
# views and sessions
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class View:
    """One committed membership epoch."""

    epoch: int
    members: Tuple[NodeId, ...]

    def __post_init__(self) -> None:
        if not self.members:
            raise ValueError("a view needs at least one member")


@dataclass
class Session:
    """Per-client causal metadata: the floor a read must dominate.

    ``floor[key]`` is the merge of the vectors of the client's last
    acked write and last read of *key* — exactly the state needed for
    read-your-writes + monotonic-reads.
    """

    client: str
    floor: Dict[str, VersionVector] = field(default_factory=dict)

    def observe(self, key: str, vv: VersionVector) -> None:
        cur = self.floor.get(key)
        self.floor[key] = vv_merge(cur, vv) if cur else dict(vv)


@dataclass
class _Versioned:
    """One replica's copy of a key: the full state plus its vector.
    ``state`` is ``("string", value)`` / ``("list", [...])`` or
    ``None`` for a tombstone (deletes replicate by dominance like any
    other write, so a partitioned stale replica can never resurrect a
    deleted key)."""

    vv: VersionVector
    state: Optional[Tuple[str, Any]]

    def copy(self) -> "_Versioned":
        """An independent replica copy: list payloads are duplicated
        so no two nodes ever alias the same mutable object."""
        state = self.state
        if state is not None and state[0] == "list":
            state = ("list", list(state[1]))
        return _Versioned(vv=dict(self.vv), state=state)


class _Node:
    """One storage node: key -> versioned state, wiped on crash."""

    def __init__(self, node_id: NodeId) -> None:
        self.node_id = node_id
        self.data: Dict[str, _Versioned] = {}

    def wipe(self) -> None:
        self.data = {}

    def live_keys(self) -> List[str]:
        return sorted(k for k, v in self.data.items()
                      if v.state is not None)


# ----------------------------------------------------------------------
# the store
# ----------------------------------------------------------------------
class ReplicatedKVStore:
    """R-way replicated KV over epoch-numbered views.

    Parameters
    ----------
    node_ids:
        Initial members (view epoch 1).
    replicas:
        Replication factor R; quorum is ``R // 2 + 1``.
    vnodes_per_node:
        Ring weight per member.
    link_blocked:
        Optional ``f(ranks) -> bool``: is a transfer spanning *ranks*
        crossing a dead link right now?  Wire to
        :meth:`FaultInjector.link_blocked
        <repro.faults.injector.FaultInjector.link_blocked>`.
    on_no_quorum:
        ``"raise"`` (default): a mutation short of quorum raises
        :class:`NoQuorumError` and applies nothing.  ``"degrade"``:
        apply to whatever replicas are reachable (>= 1), emit
        ``kv.write.degraded`` and do **not** record the write as acked
        — the availability-over-consistency mode the chaos harness
        runs the dirty table in.

    Examples
    --------
    >>> kv = ReplicatedKVStore([1, 2, 3], replicas=2)
    >>> kv.set("k", "v")
    >>> kv.get("k")
    'v'
    >>> kv.view.epoch
    1
    >>> kv.propose_view([1, 2, 3, 4])
    2
    >>> kv.commit_view()
    2
    """

    def __init__(
        self,
        node_ids: Sequence[NodeId],
        replicas: int = 3,
        vnodes_per_node: int = 64,
        link_blocked: Optional[Callable[[Iterable[NodeId]], bool]] = None,
        on_no_quorum: str = "raise",
    ) -> None:
        if not node_ids:
            raise ValueError("at least one node required")
        if len(set(node_ids)) != len(node_ids):
            raise ValueError("duplicate node ids")
        if replicas < 1:
            raise ValueError("replicas must be >= 1")
        if replicas > len(node_ids):
            raise ValueError(
                f"replicas={replicas} exceeds the {len(node_ids)} "
                f"initial members")
        if on_no_quorum not in ("raise", "degrade"):
            raise ValueError("on_no_quorum must be 'raise' or 'degrade'")
        self.replicas = replicas
        self._vnodes = vnodes_per_node
        self._link_blocked = link_blocked
        self._on_no_quorum = on_no_quorum
        #: Every node ever seen — data survives leaving a view (the
        #: elastic principle: powering down is not a crash).
        self._nodes: Dict[NodeId, _Node] = {}
        self._down: set = set()
        self._ring = HashRing()
        self._members: Tuple[NodeId, ...] = tuple(node_ids)
        for nid in node_ids:
            self._admit(nid)
            self._ring.add_server(nid, weight=vnodes_per_node)
        self._epoch = 0
        self._staged: Optional[Tuple[int, Tuple[NodeId, ...]]] = None
        self.view = View(epoch=0, members=self._members)
        #: Newest acked vector per key — the durability ledger audits
        #: compare replica contents against.
        self._acked: Dict[str, VersionVector] = {}
        self._sessions: Dict[str, Session] = {}
        #: Counters for reports.
        self.stats: Dict[str, int] = {
            "writes_acked": 0, "writes_failed": 0, "writes_degraded": 0,
            "reads": 0, "reads_degraded": 0, "reads_failed": 0,
            "repair_copies": 0, "views_committed": 0,
        }
        # Views are the only membership mechanism, including the first.
        self.propose_view(node_ids)
        self.commit_view()

    # ------------------------------------------------------------------
    # membership: epoch-numbered views
    # ------------------------------------------------------------------
    def _admit(self, node_id: NodeId) -> _Node:
        node = self._nodes.get(node_id)
        if node is None:
            node = _Node(node_id)
            self._nodes[node_id] = node
        return node

    @property
    def epoch(self) -> int:
        return self._epoch

    @property
    def members(self) -> Tuple[NodeId, ...]:
        return self._members

    @property
    def node_ids(self) -> List[NodeId]:
        """Every node ever admitted (sorted), member or not."""
        return sorted(self._nodes, key=str)

    def propose_view(self, members: Sequence[NodeId]) -> int:
        """Stage the next view (epoch + 1).  Ops keep running against
        the committed view until :meth:`commit_view`.  Returns the
        staged epoch."""
        members = tuple(members)
        if not members:
            raise ValueError("a view needs at least one member")
        if len(set(members)) != len(members):
            raise ValueError("duplicate member in proposed view")
        if len(members) < self.replicas:
            raise ValueError(
                f"view of {len(members)} members cannot hold "
                f"{self.replicas} replicas")
        epoch = self._next_epoch()
        self._staged = (epoch, members)
        if OBS.bus.active:
            OBS.bus.emit("kv.view.propose", epoch=epoch,
                         members=sorted(members, key=str))
        return epoch

    def _next_epoch(self) -> int:
        """Hook: the epoch a new proposal gets (mutants override)."""
        return self._epoch + 1

    def commit_view(self) -> int:
        """Install the staged view: rebuild the ring, run anti-entropy
        so the new replica sets hold the newest state, and emit the
        commit.  Returns the committed epoch."""
        if self._staged is None:
            raise RuntimeError("no proposed view to commit")
        epoch, members = self._staged
        self._staged = None
        self._epoch = epoch
        self._members = members
        self._ring = HashRing()
        for nid in members:
            self._admit(nid)
            self._ring.add_server(nid, weight=self._vnodes)
        self.view = View(epoch=epoch, members=members)
        self.stats["views_committed"] += 1
        if OBS.bus.active:
            OBS.bus.emit("kv.view.commit", epoch=epoch,
                         members=sorted(members, key=str))
        self._anti_entropy_pass(reason="view-commit")
        return epoch

    def change_view(self, members: Sequence[NodeId]) -> int:
        """Convenience: propose + commit in one call."""
        self.propose_view(members)
        return self.commit_view()

    # ------------------------------------------------------------------
    # fault wiring
    # ------------------------------------------------------------------
    def crash_node(self, node_id: NodeId) -> None:
        """*node_id* crashed: local data is gone, the node is down
        until :meth:`repair_node`.  Membership (the view) is
        unchanged — a crash is not a resize."""
        if node_id not in self._nodes:
            raise KeyError(f"unknown node: {node_id!r}")
        self._nodes[node_id].wipe()
        self._down.add(node_id)
        if OBS.bus.active:
            OBS.bus.emit("kv.node.crash", node=str(node_id))

    def repair_node(self, node_id: NodeId) -> None:
        """*node_id* is back (empty): re-admit it and immediately
        re-replicate everything it should hold."""
        if node_id not in self._nodes:
            raise KeyError(f"unknown node: {node_id!r}")
        self._down.discard(node_id)
        if OBS.bus.active:
            OBS.bus.emit("kv.node.repair", node=str(node_id))
        self._anti_entropy_pass(reason="node-repair")

    def node_is_down(self, node_id: NodeId) -> bool:
        return node_id in self._down

    def _reachable(self, node_id: NodeId,
                   coordinator: NodeId) -> bool:
        if node_id in self._down:
            return False
        if (self._link_blocked is not None and node_id != coordinator
                and self._link_blocked((coordinator, node_id))):
            return False
        return True

    # ------------------------------------------------------------------
    # placement
    # ------------------------------------------------------------------
    def replica_set(self, key: str) -> List[NodeId]:
        """The R members owning *key* under the committed view: first
        R distinct members clockwise from the key's hash."""
        out: List[NodeId] = []
        for nid in self._ring.walk_servers(self._ring.key_position(key)):
            out.append(nid)
            if len(out) == self.replicas:
                break
        return out

    def coordinator_for(self, key: str) -> NodeId:
        return self.replica_set(key)[0]

    @property
    def quorum(self) -> int:
        return self.replicas // 2 + 1

    # ------------------------------------------------------------------
    # sessions
    # ------------------------------------------------------------------
    def session(self, client: str) -> Session:
        """The (auto-created) causal session for *client*."""
        sess = self._sessions.get(client)
        if sess is None:
            sess = Session(client=client)
            self._sessions[client] = sess
        return sess

    # ------------------------------------------------------------------
    # replica plumbing (the mutation-test hook points)
    # ------------------------------------------------------------------
    def _gather(self, key: str) -> Tuple[List[Tuple[NodeId, _Versioned]],
                                         List[NodeId], NodeId]:
        """Poll the replica set: ``(replies, reachable, coordinator)``.
        A reachable replica that has never seen the key replies with an
        empty vector (it can still acknowledge a write)."""
        targets = self.replica_set(key)
        coordinator = targets[0]
        replies: List[Tuple[NodeId, _Versioned]] = []
        reachable: List[NodeId] = []
        for nid in targets:
            if not self._reachable(nid, coordinator):
                continue
            reachable.append(nid)
            versioned = self._nodes[nid].data.get(key)
            replies.append((nid, versioned if versioned is not None
                            else _Versioned(vv={}, state=None)))
        return replies, reachable, coordinator

    def _choose_reply(self, replies: List[Tuple[NodeId, _Versioned]]
                      ) -> _Versioned:
        """The dominant reply (newest vector; deterministic tie-break).
        Mutants override this to serve stale data."""
        best = replies[0][1]
        for _nid, versioned in replies[1:]:
            if _vv_sortkey(versioned.vv) > _vv_sortkey(best.vv):
                best = versioned
        return best

    def _replicate(self, key: str, versioned: _Versioned,
                   targets: Sequence[NodeId]) -> List[NodeId]:
        """Store *versioned* on every target; returns the ack list.
        Mutants override this to drop writes after acking."""
        acked: List[NodeId] = []
        for nid in targets:
            self._nodes[nid].data[key] = versioned.copy()
            acked.append(nid)
        return acked

    def _record_ack(self, key: str, vv: VersionVector) -> None:
        self._acked[key] = dict(vv)

    def _enforce_floor(self, key: str, vv: VersionVector,
                       session: Optional[Session]) -> None:
        if session is None:
            return
        floor = session.floor.get(key)
        if floor and not vv_dominates(vv, floor):
            raise StaleSessionError(
                f"key {key!r}: reachable replicas are behind client "
                f"{session.client!r}'s causal floor")

    # ------------------------------------------------------------------
    # core quorum ops
    # ------------------------------------------------------------------
    def _mutate(self, key: str,
                transform: Callable[[Optional[Tuple[str, Any]]],
                                    Optional[Tuple[str, Any]]],
                client: Optional[str] = None) -> Tuple[Any, VersionVector]:
        """Read-newest, transform the full state, replicate it with a
        bumped vector.  Returns ``(pre-transform state, new vector)``.
        """
        replies, reachable, coordinator = self._gather(key)
        session = self.session(client) if client is not None else None
        need = self.quorum
        if len(reachable) < need and self._on_no_quorum == "raise":
            self.stats["writes_failed"] += 1
            if OBS.bus.active:
                OBS.bus.emit("kv.write.fail", key=key,
                             client=client, got=len(reachable),
                             need=need, epoch=self._epoch)
            raise NoQuorumError(key, len(reachable), need)
        if not reachable:
            # Even degrade mode needs one replica to land the write on.
            self.stats["writes_failed"] += 1
            if OBS.bus.active:
                OBS.bus.emit("kv.write.fail", key=key,
                             client=client, got=0, need=need,
                             epoch=self._epoch)
            raise NoQuorumError(key, 0, need)
        current = self._choose_reply(replies)
        new_vv = dict(current.vv)
        cnode = str(coordinator)
        new_vv[cnode] = new_vv.get(cnode, 0) + 1
        new_state = transform(current.state)
        acked = self._replicate(
            key, _Versioned(vv=new_vv, state=new_state), reachable)
        quorum_met = len(acked) >= need
        if quorum_met:
            self._record_ack(key, new_vv)
            self.stats["writes_acked"] += 1
            if session is not None:
                session.observe(key, new_vv)
            if OBS.bus.active:
                OBS.bus.emit("kv.write.ack", key=key, client=client,
                             vv=dict(sorted(new_vv.items())),
                             acks=sorted(map(str, acked)),
                             epoch=self._epoch)
        else:
            # Sub-quorum, degrade mode: applied but not durable-acked.
            self.stats["writes_degraded"] += 1
            if session is not None:
                session.observe(key, new_vv)
            if OBS.bus.active:
                OBS.bus.emit("kv.write.degraded", key=key, client=client,
                             vv=dict(sorted(new_vv.items())),
                             acks=sorted(map(str, acked)),
                             need=need, epoch=self._epoch)
        return current.state, new_vv

    def _read(self, key: str, client: Optional[str] = None
              ) -> Tuple[Optional[Tuple[str, Any]], VersionVector, bool]:
        """Quorum read: ``(state, vector, degraded)``.  Serves from a
        single replica only as a flagged degraded read, and never
        returns data older than the client session's floor."""
        replies, reachable, _coordinator = self._gather(key)
        session = self.session(client) if client is not None else None
        if not replies:
            self.stats["reads_failed"] += 1
            if OBS.bus.active:
                OBS.bus.emit("kv.read.fail", key=key, client=client,
                             got=0, need=self.quorum,
                             epoch=self._epoch)
            raise NoQuorumError(key, 0, self.quorum)
        best = self._choose_reply(replies)
        # A read is degraded when it falls short of a quorum, or when
        # the newest reachable copy is provably behind the durability
        # ledger (possible when crashes race a view change: the owners
        # holding the newest copy are all dark).  Either way the reply
        # is served honestly flagged, never passed off as consistent.
        acked = self._acked.get(key)
        degraded = (len(replies) < self.quorum
                    or (acked is not None
                        and not vv_dominates(best.vv, acked)))
        try:
            self._enforce_floor(key, best.vv, session)
        except StaleSessionError:
            self.stats["reads_failed"] += 1
            if OBS.bus.active:
                OBS.bus.emit("kv.read.fail", key=key, client=client,
                             got=len(replies), need=self.quorum,
                             reason="stale", epoch=self._epoch)
            raise
        # Read repair: bring stale reachable replicas up to the reply
        # we are about to serve (keeps under-replication windows short
        # and deterministic).
        for nid, versioned in replies:
            if versioned.vv != best.vv:
                self._nodes[nid].data[key] = best.copy()
                self.stats["repair_copies"] += 1
        self.stats["reads"] += 1
        if degraded:
            self.stats["reads_degraded"] += 1
        if session is not None:
            session.observe(key, best.vv)
        if OBS.bus.active:
            OBS.bus.emit("kv.read", key=key, client=client,
                         vv=dict(sorted(best.vv.items())),
                         replies=len(replies), degraded=degraded,
                         epoch=self._epoch)
        return best.state, best.vv, degraded

    # ------------------------------------------------------------------
    # anti-entropy
    # ------------------------------------------------------------------
    def _anti_entropy_pass(self, reason: str = "manual") -> int:
        """Re-replicate every key toward its committed-view replica
        set: each reachable owner receives the newest known copy
        (tombstones included, so deletes propagate), and reachable
        non-owners drop theirs.  Returns the number of copies written.
        Mutants override this to skip repair."""
        copied = 0
        dropped = 0
        for key in self._all_keys(include_tombstones=True):
            best: Optional[_Versioned] = None
            holders: List[NodeId] = []
            for nid in sorted(self._nodes, key=str):
                versioned = self._nodes[nid].data.get(key)
                if versioned is None:
                    continue
                holders.append(nid)
                if best is None or (_vv_sortkey(versioned.vv)
                                    > _vv_sortkey(best.vv)):
                    best = versioned
            if best is None:
                continue
            owners = self.replica_set(key)
            coordinator = owners[0]
            for nid in owners:
                if not self._reachable(nid, coordinator):
                    continue
                have = self._nodes[nid].data.get(key)
                if have is None or have.vv != best.vv:
                    self._nodes[nid].data[key] = best.copy()
                    copied += 1
            owner_set = set(owners)
            for nid in holders:
                if nid in owner_set or nid in self._down:
                    continue
                # The old owner hands off only once an in-view replica
                # holds a copy at least as new as its own.
                if any(self._nodes[o].data.get(key) is not None
                       and vv_dominates(self._nodes[o].data[key].vv,
                                        self._nodes[nid].data[key].vv)
                       for o in owners):
                    del self._nodes[nid].data[key]
                    dropped += 1
        self.stats["repair_copies"] += copied
        if OBS.bus.active:
            OBS.bus.emit("kv.repair", epoch=self._epoch, reason=reason,
                         copied=copied, dropped=dropped)
        return copied

    def anti_entropy(self) -> int:
        """Public entry point for a manual repair pass."""
        return self._anti_entropy_pass(reason="manual")

    # ------------------------------------------------------------------
    # audits
    # ------------------------------------------------------------------
    def audit(self, label: str = "periodic") -> Dict[str, object]:
        """Compare the durability ledger against replica contents.

        * ``lost_acked`` — acked keys whose newest acked vector is on
          **no** node at all (an acknowledged write has been lost);
        * ``under_replicated`` — live acked keys where fewer than R
          of the current replica-set members hold a copy at least as
          new as the newest ack.
        """
        lost = 0
        under = 0
        live_keys = 0
        for key in sorted(self._acked):
            acked_vv = self._acked[key]
            newest: Optional[_Versioned] = None
            for nid in sorted(self._nodes, key=str):
                versioned = self._nodes[nid].data.get(key)
                if versioned is not None and (
                        newest is None or _vv_sortkey(versioned.vv)
                        > _vv_sortkey(newest.vv)):
                    newest = versioned
            if newest is None or not vv_dominates(newest.vv, acked_vv):
                lost += 1
                continue
            if newest.state is None:
                continue               # deleted: nothing to replicate
            live_keys += 1
            holders = 0
            for nid in self.replica_set(key):
                versioned = self._nodes[nid].data.get(key)
                if versioned is not None and vv_dominates(versioned.vv,
                                                          acked_vv):
                    holders += 1
            if holders < self.replicas:
                under += 1
        report: Dict[str, object] = {
            "label": label, "epoch": self._epoch, "keys": live_keys,
            "lost_acked": lost, "under_replicated": under,
        }
        if OBS.bus.active:
            OBS.bus.emit("kv.audit", label=label, epoch=self._epoch,
                         keys=live_keys, lost_acked=lost,
                         under_replicated=under)
        return report

    # ------------------------------------------------------------------
    # Redis-style command surface (KVStore-compatible)
    # ------------------------------------------------------------------
    @staticmethod
    def _as_list(state: Optional[Tuple[str, Any]], key: str) -> List[Any]:
        if state is None:
            return []
        kind, value = state
        if kind != "list":
            from repro.kvstore.store import WrongTypeError
            raise WrongTypeError(f"key {key!r} holds a string")
        return list(value)

    @staticmethod
    def _as_string(state: Optional[Tuple[str, Any]], key: str) -> Any:
        if state is None:
            return None
        kind, value = state
        if kind != "string":
            from repro.kvstore.store import WrongTypeError
            raise WrongTypeError(f"key {key!r} holds a list")
        return value

    def set(self, key: str, value: Any, client: Optional[str] = None
            ) -> None:
        self._mutate(key, lambda _s: ("string", value), client)

    def get(self, key: str, client: Optional[str] = None) -> Any:
        state, _vv, _deg = self._read(key, client)
        return self._as_string(state, key)

    def incr(self, key: str, amount: int = 1,
             client: Optional[str] = None) -> int:
        box: Dict[str, int] = {}

        def transform(state: Optional[Tuple[str, Any]]
                      ) -> Tuple[str, Any]:
            cur = self._as_string(state, key)
            if cur is None:
                cur = 0
            if not isinstance(cur, int):
                from repro.kvstore.store import WrongTypeError
                raise WrongTypeError(f"key {key!r} is not an integer")
            box["value"] = cur + amount
            return ("string", cur + amount)

        self._mutate(key, transform, client)
        return box["value"]

    def delete(self, key: str, client: Optional[str] = None) -> bool:
        box: Dict[str, bool] = {}

        def transform(state: Optional[Tuple[str, Any]]) -> None:
            box["existed"] = state is not None
            return None                # tombstone

        self._mutate(key, transform, client)
        return box["existed"]

    def exists(self, key: str, client: Optional[str] = None) -> bool:
        state, _vv, _deg = self._read(key, client)
        return state is not None

    # -- lists ---------------------------------------------------------
    def rpush(self, key: str, *values: Any,
              client: Optional[str] = None) -> int:
        if not values:
            raise ValueError("rpush requires at least one value")
        box: Dict[str, int] = {}

        def transform(state):
            lst = self._as_list(state, key)
            lst.extend(values)
            box["len"] = len(lst)
            return ("list", lst)

        self._mutate(key, transform, client)
        return box["len"]

    def lpush(self, key: str, *values: Any,
              client: Optional[str] = None) -> int:
        if not values:
            raise ValueError("lpush requires at least one value")
        box: Dict[str, int] = {}

        def transform(state):
            lst = self._as_list(state, key)
            for v in values:
                lst.insert(0, v)
            box["len"] = len(lst)
            return ("list", lst)

        self._mutate(key, transform, client)
        return box["len"]

    def lpop(self, key: str, client: Optional[str] = None) -> Any:
        box: Dict[str, Any] = {"value": None}

        def transform(state):
            lst = self._as_list(state, key)
            if not lst:
                return None if state is None else state
            box["value"] = lst.pop(0)
            return ("list", lst) if lst else None

        self._mutate(key, transform, client)
        return box["value"]

    def rpop(self, key: str, client: Optional[str] = None) -> Any:
        box: Dict[str, Any] = {"value": None}

        def transform(state):
            lst = self._as_list(state, key)
            if not lst:
                return None if state is None else state
            box["value"] = lst.pop()
            return ("list", lst) if lst else None

        self._mutate(key, transform, client)
        return box["value"]

    def llen(self, key: str, client: Optional[str] = None) -> int:
        state, _vv, _deg = self._read(key, client)
        return len(self._as_list(state, key)) if state is not None else 0

    def lindex(self, key: str, index: int,
               client: Optional[str] = None) -> Any:
        state, _vv, _deg = self._read(key, client)
        lst = self._as_list(state, key) if state is not None else []
        try:
            return lst[index]
        except IndexError:
            return None

    def lrange(self, key: str, start: int, stop: int,
               client: Optional[str] = None) -> List[Any]:
        state, _vv, _deg = self._read(key, client)
        lst = self._as_list(state, key) if state is not None else []
        n = len(lst)
        if not n:
            return []
        if start < 0:
            start = max(n + start, 0)
        if stop < 0:
            stop = n + stop
        stop = min(stop, n - 1)
        if start > stop or start >= n:
            return []
        return lst[start:stop + 1]

    def lrem(self, key: str, count: int, value: Any,
             client: Optional[str] = None) -> int:
        box: Dict[str, int] = {"removed": 0}

        def transform(state):
            lst = self._as_list(state, key)
            if not lst:
                return None if state is None else state
            removed = 0
            if count >= 0:
                limit = count if count > 0 else len(lst)
                out = []
                for item in lst:
                    if item == value and removed < limit:
                        removed += 1
                    else:
                        out.append(item)
            else:
                limit = -count
                out_rev = []
                for item in reversed(lst):
                    if item == value and removed < limit:
                        removed += 1
                    else:
                        out_rev.append(item)
                out = list(reversed(out_rev))
            box["removed"] = removed
            return ("list", out) if out else None

        self._mutate(key, transform, client)
        return box["removed"]

    # -- fan-out -------------------------------------------------------
    def _all_keys(self, include_tombstones: bool = False) -> List[str]:
        seen: set = set()
        for nid in sorted(self._nodes, key=str):
            node = self._nodes[nid]
            for key, versioned in node.data.items():
                if include_tombstones or versioned.state is not None:
                    seen.add(key)
        return sorted(seen)

    def keys(self) -> List[str]:
        """Every live key (union over all nodes, sorted — a
        deterministic fan-out like the sharded store's)."""
        return self._all_keys()

    def dbsize(self) -> int:
        return len(self.keys())

    def flushall(self) -> None:
        """Admin wipe: every node, every version, the ledger."""
        for node in self._nodes.values():
            node.wipe()
        self._acked.clear()
        for sess in self._sessions.values():
            sess.floor.clear()
