"""End-to-end trace analysis: Figures 8/9 and Table II.

:func:`analyze_trace` runs the ideal oracle plus the three real
policies over one trace and packages the active-server series, machine
hours, and Table II's relative-machine-hour ratios.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Optional

import numpy as np

from repro.cluster.power import PowerModel
from repro.obs.runtime import OBS
from repro.policy.ideal import ideal_servers
from repro.policy.resizer import (
    PolicyConfig,
    PolicyResult,
    default_dataset_bytes,
    simulate_policy,
)
from repro.workloads.trace import LoadTrace

__all__ = ["TraceAnalysis", "analyze_trace", "config_for_trace",
           "POLICY_ORDER"]

POLICY_ORDER = ("original-ch", "primary-full", "primary-selective")


@dataclass
class TraceAnalysis:
    """All series and summary numbers for one trace."""

    trace_name: str
    config: PolicyConfig
    dt: float
    ideal: np.ndarray
    results: Dict[str, PolicyResult]

    @property
    def ideal_machine_hours(self) -> float:
        return float(self.ideal.sum() * self.dt / 3600.0)

    def relative_machine_hours(self) -> Dict[str, float]:
        """Table II's row for this trace."""
        return {name: res.relative_machine_hours
                for name, res in self.results.items()}

    def savings_vs_original(self) -> Dict[str, float]:
        """§V-B's 'saves X% machine hours comparing to the original
        CH' numbers."""
        base = self.results["original-ch"].machine_hours
        return {
            name: 1.0 - res.machine_hours / base
            for name, res in self.results.items()
            if name != "original-ch"
        }

    def series(self) -> Dict[str, np.ndarray]:
        """Aligned {'ideal': ..., policy: ...} server-count series —
        the curves of Figures 8/9."""
        out: Dict[str, np.ndarray] = {"ideal": self.ideal}
        for name, res in self.results.items():
            out[name] = res.servers
        return out

    def energy_summary(self,
                       power: Optional[PowerModel] = None
                       ) -> Dict[str, Dict[str, float]]:
        """Per-policy energy (kWh) and savings relative to keeping the
        whole cluster on for the trace — the paper's §I motivation
        ("power consumption proportional to the dynamic system load")
        in concrete units."""
        if power is None:
            power = PowerModel()
        duration_hours = len(self.ideal) * self.dt / 3600.0
        n = self.config.n_max
        out: Dict[str, Dict[str, float]] = {}
        for name, res in self.results.items():
            mh = res.machine_hours
            off_hours = n * duration_hours - mh
            out[name] = {
                "energy_kwh": power.energy_kwh(mh, off_hours),
                "savings_vs_always_on": power.savings_vs_always_on(
                    mh, n, duration_hours),
            }
        out["always-on"] = {
            "energy_kwh": power.energy_kwh(n * duration_hours, 0.0),
            "savings_vs_always_on": 0.0,
        }
        return out


def config_for_trace(trace: LoadTrace, n_max: int,
                     working_set_hours: float = 0.75,
                     **overrides) -> PolicyConfig:
    """A :class:`PolicyConfig` calibrated the way the paper's own
    analysis is: the cluster is provisioned for the trace's *peak*
    (``per_server_bw = peak_load / n_max``, so the ideal series spans
    the full 1..n_max range of Figures 8/9), and the migration-relevant
    dataset is a hot working set of a couple of hours of mean load."""
    stats = trace.stats()
    # Provision for the sustained peak (99th percentile), not the single
    # tallest sample: the ideal series then spans the figures' full
    # y-range while clipping at n_max only in rare extremes, as the
    # paper's ideal curves do.
    import numpy as np
    p99 = float(np.percentile(trace.load, 99))
    overrides.setdefault("per_server_bw", max(p99, 1.0) / n_max)
    overrides.setdefault(
        "dataset_bytes",
        max(1.0, stats["mean_load"] * working_set_hours * 3600.0))
    return PolicyConfig(n_max=n_max, **overrides)


def analyze_trace(trace: LoadTrace,
                  config: Optional[PolicyConfig] = None,
                  n_max: Optional[int] = None,
                  **config_overrides) -> TraceAnalysis:
    """Run the full §V-B analysis on one trace.

    Parameters
    ----------
    trace:
        The offered-load trace.
    config:
        Complete model configuration; when omitted, one is built with
        *n_max* (required), a hot-working-set dataset size derived from
        the trace, and any keyword overrides.
    """
    if config is None:
        if n_max is None:
            raise ValueError("provide either config or n_max")
        config_overrides.setdefault(
            "dataset_bytes", default_dataset_bytes(trace))
        config = PolicyConfig(n_max=n_max, **config_overrides)

    prof = OBS.profiler
    if prof is None:
        ideal = ideal_servers(trace.load, config.per_server_bw,
                              config.n_max)
        results = {name: simulate_policy(name, trace, config)
                   for name in POLICY_ORDER}
    else:
        with prof.frame("policy:ideal"):
            ideal = ideal_servers(trace.load, config.per_server_bw,
                                  config.n_max)
        results = {}
        for name in POLICY_ORDER:
            with prof.frame("policy:" + name):
                results[name] = simulate_policy(name, trace, config)
    return TraceAnalysis(
        trace_name=trace.name,
        config=config,
        dt=trace.dt,
        ideal=ideal,
        results=results,
    )
