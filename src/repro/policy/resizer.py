"""Resizing-policy simulators for the trace analysis (§V-B).

The paper deduces "the number of servers needed" per time step from the
trace load plus each policy's overheads: clean-up delays when the
original consistent hashing sizes down, and re-integration IO when any
policy sizes up.  These simulators implement that calculation as an
explicit per-sample state machine:

* the **ideal** series is ``ceil(load / per_server_bw)``;
* sizing **up** is instant for every policy (consistent hashing adds
  servers without prerequisite migration, §II-C) but creates a
  *migration debt* — bytes that must move to restore the layout:

  - original CH: all data the new ring maps onto the added servers
    (they rejoined empty),
  - primary+full: all data the equal-work layout puts on the re-added
    servers (over-migration: the full path cannot tell stale from
    valid, §II-C),
  - primary+selective: only the *dirty* replicas offloaded while the
    servers were down, drained under a rate cap;

  draining the debt consumes cluster bandwidth, so while it drains the
  cluster must run ``ceil((load + drain) / per_server_bw)`` servers —
  the "extra IOs ... which increases the number of servers needed";

* sizing **down** is instant for the primary-server policies (floored
  at p) but *sequential and delayed* for original CH: each departing
  server's data must re-replicate before the next departure (§II-C),
  at a rate set by the cluster's recovery bandwidth.

The model is fluid (bytes and bandwidth, no per-object placement) —
the same granularity as the paper's own trace analysis.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Dict

import numpy as np

from repro.core.layout import primary_count
from repro.policy.ideal import ideal_servers
from repro.workloads.trace import LoadTrace

__all__ = [
    "PolicyConfig",
    "PolicyResult",
    "OriginalCHPolicy",
    "PrimaryFullPolicy",
    "PrimarySelectivePolicy",
    "GreenCHTPolicy",
    "simulate_policy",
]


@dataclass(frozen=True)
class PolicyConfig:
    """Shared model parameters.

    Attributes
    ----------
    n_max:
        Cluster size (the trace's machine count).
    per_server_bw:
        *Effective* foreground throughput one active server contributes
        to the traced workload (bytes/s).  This is a workload-level
        number (MapReduce jobs do far less than disk speed per node);
        it calibrates the ideal series to the figures' y-range.
    disk_bw:
        *Physical* per-server disk bandwidth (bytes/s).  Clean-up
        re-replication and re-integration move raw bytes at disk
        speed, regardless of how slow the workload-effective rate is.
    replicas:
        Replication factor r.
    dataset_bytes:
        Unique resident data D; the clean-up/migration volumes scale
        with it.  Defaults (via :func:`default_dataset_bytes`) to a few
        hours of the trace's mean load — a hot working set, not the
        whole disk population.
    recovery_fraction:
        Share of the active cluster's disk bandwidth the baseline may
        spend on departure re-replication.
    migration_fraction:
        Share of disk bandwidth uncontrolled re-integration grabs
        (original CH and primary+full; §II-C: "the rate of migration
        operation is not controlled").
    selective_rate_limit:
        Byte-rate cap for selective re-integration (the token bucket).
    """

    n_max: int
    per_server_bw: float = 40e6
    disk_bw: float = 80e6
    replicas: int = 2
    dataset_bytes: float = 1e12
    recovery_fraction: float = 0.5
    migration_fraction: float = 0.5
    selective_rate_limit: float = 100e6

    def __post_init__(self) -> None:
        if self.n_max < self.replicas:
            raise ValueError("cluster smaller than replication factor")
        for name in ("per_server_bw", "disk_bw", "dataset_bytes",
                     "selective_rate_limit"):
            if getattr(self, name) <= 0:
                raise ValueError(f"{name} must be positive")
        for name in ("recovery_fraction", "migration_fraction"):
            if not 0 < getattr(self, name) <= 1:
                raise ValueError(f"{name} must be in (0, 1]")

    @property
    def p(self) -> int:
        return primary_count(self.n_max, self.replicas)


def default_dataset_bytes(trace: LoadTrace, hours: float = 6.0) -> float:
    """A hot-working-set default: *hours* of the trace's mean load."""
    return trace.stats()["mean_load"] * hours * 3600.0


@dataclass
class PolicyResult:
    """Outcome of one policy run over one trace."""

    name: str
    servers: np.ndarray          # active servers per sample
    dt: float
    migrated_bytes: float        # total re-integration traffic
    rereplicated_bytes: float    # baseline clean-up traffic
    ideal: np.ndarray

    @property
    def machine_hours(self) -> float:
        return float(self.servers.sum() * self.dt / 3600.0)

    @property
    def ideal_machine_hours(self) -> float:
        return float(self.ideal.sum() * self.dt / 3600.0)

    @property
    def relative_machine_hours(self) -> float:
        """Table II's metric: machine hours relative to the ideal."""
        return self.machine_hours / self.ideal_machine_hours


def _equal_work_shares(n: int, p: int, r: int) -> np.ndarray:
    """Fraction of stored *replica bytes* per rank under the equal-work
    layout: primaries split 1/r of all replicas evenly; secondaries
    split the rest proportional to 1/i."""
    shares = np.zeros(n)
    shares[:p] = (1.0 / r) / p
    sec = np.array([1.0 / i for i in range(p + 1, n + 1)])
    if sec.size:
        shares[p:] = (1.0 - 1.0 / r) * sec / sec.sum()
    return shares


class _PolicyBase:
    """Per-sample state machine shared by the three policies."""

    name = "base"

    def __init__(self, config: PolicyConfig) -> None:
        self.cfg = config

    # Overridden hooks -------------------------------------------------
    @property
    def floor(self) -> int:
        raise NotImplementedError

    def growth_debt(self, k_old: int, k_new: int,
                    state: Dict[str, float]) -> float:
        """Bytes of re-integration triggered by growing k_old→k_new."""
        raise NotImplementedError

    def drain_capacity(self, k: int) -> float:
        """Max migration drain rate with k servers active (raw bytes at
        disk speed)."""
        return self.cfg.migration_fraction * k * self.cfg.disk_bw

    def shrink(self, k: int, target: int, dt: float,
               state: Dict[str, float]) -> int:
        """New active count after a shrink opportunity (instant by
        default; the baseline overrides with sequential delays)."""
        return max(target, self.floor)

    def quantise_target(self, target: int) -> int:
        """Restrict the achievable active counts (identity by default;
        the tiered baseline rounds up to tier boundaries)."""
        return target

    def _migration_blocks_shrink(self, k: int, dt: float,
                                 state: Dict[str, float]) -> bool:
        """Uncontrolled re-integration occupies the recovery machinery;
        sizing down waits when the outstanding debt cannot drain within
        roughly one sample period — §V-B: "the IO load from full data
        re-integration could prevent the cluster from sizing down for
        some period ... this only occurs at extreme situations where
        the cluster resizes abruptly"."""
        return state["debt"] > self.drain_capacity(k) * dt

    # ------------------------------------------------------------------
    def simulate(self, trace: LoadTrace,
                 requested: "np.ndarray | None" = None) -> PolicyResult:
        """Run the policy over *trace*.

        *requested* overrides the per-sample desired server count (a
        resizing controller's output); by default the policy chases
        the clairvoyant ideal, as the paper's analysis does.  The
        mechanical overheads (migration debt, clean-up delays, floors)
        apply either way.
        """
        cfg = self.cfg
        ideal = ideal_servers(trace.load, cfg.per_server_bw, cfg.n_max)
        if requested is None:
            requested = ideal
        elif len(requested) != len(trace.load):
            raise ValueError("requested series length mismatch")
        dt = trace.dt
        k = int(requested[0]) if requested[0] >= self.floor else self.floor
        state: Dict[str, float] = {
            "debt": 0.0,            # migration bytes outstanding
            "dirty": 0.0,           # offloaded bytes (selective only)
            "removal_credit": 0.0,  # seconds of clean-up accumulated
            "migrated": 0.0,
            "rereplicated": 0.0,
        }
        out = np.empty(trace.load.size, dtype=int)

        for t in range(trace.load.size):
            load = trace.load[t]
            write_load = load * trace.write_fraction

            # Drain outstanding migration debt; while it drains, the
            # cluster must carry load + drain.
            drain = 0.0
            if state["debt"] > 0:
                drain = min(state["debt"] / dt, self.drain_capacity(k))
                state["debt"] -= drain * dt
                state["migrated"] += drain * dt

            # Migration eats a slice of every server's disk; the extra
            # servers needed to keep the foreground whole is the drain
            # expressed in whole disks: k*psb*(1 - drain/(k*disk)) >=
            # load  <=>  k >= load/psb + drain/disk.
            target = int(min(cfg.n_max,
                             max(self.floor,
                                 int(requested[t])
                                 + math.ceil(drain / cfg.disk_bw))))
            target = self.quantise_target(target)

            if target > k:
                state["debt"] += self.growth_debt(k, target, state)
                k = target           # growth is instant (§II-C)
            elif target < k:
                k = self.shrink(k, target, dt, state)

            # Offload accounting while below full power.
            self.track_dirty(k, write_load, dt, state)

            out[t] = k

        return PolicyResult(
            name=self.name, servers=out, dt=dt,
            migrated_bytes=state["migrated"],
            rereplicated_bytes=state["rereplicated"],
            ideal=ideal,
        )

    def track_dirty(self, k: int, write_load: float, dt: float,
                    state: Dict[str, float]) -> None:
        """Default: no dirty tracking (only selective uses it)."""


class OriginalCHPolicy(_PolicyBase):
    """The unmodified consistent-hashing baseline."""

    name = "original-ch"

    @property
    def floor(self) -> int:
        return self.cfg.replicas

    def growth_debt(self, k_old: int, k_new: int,
                    state: Dict[str, float]) -> float:
        # Added servers rejoin empty; the ring maps (k_new-k_old)/k_new
        # of all stored replicas onto them.
        stored = self.cfg.dataset_bytes * self.cfg.replicas
        return stored * (k_new - k_old) / k_new

    def shrink(self, k: int, target: int, dt: float,
               state: Dict[str, float]) -> int:
        cfg = self.cfg
        if self._migration_blocks_shrink(k, dt, state):
            return k
        # Sequential removal: each departing server's replicas
        # (D*r/k bytes) re-replicate at the cluster's recovery
        # bandwidth before the next removal.
        state["removal_credit"] += dt
        while k > max(target, self.floor):
            per_server = cfg.dataset_bytes * cfg.replicas / k
            rate = cfg.recovery_fraction * k * cfg.disk_bw
            needed = per_server / rate
            if state["removal_credit"] < needed:
                break
            state["removal_credit"] -= needed
            state["rereplicated"] += per_server
            k -= 1
        if k <= max(target, self.floor):
            state["removal_credit"] = 0.0
        return k


class _ElasticPolicyBase(_PolicyBase):
    """Shared by primary+full and primary+selective: equal-work layout
    with instant resizing floored at the primary count."""

    @property
    def floor(self) -> int:
        return self.cfg.p

    def _shares(self) -> np.ndarray:
        return _equal_work_shares(self.cfg.n_max, self.cfg.p,
                                  self.cfg.replicas)


class PrimaryFullPolicy(_ElasticPolicyBase):
    """Primary servers + equal-work layout, full re-integration."""

    name = "primary-full"

    def growth_debt(self, k_old: int, k_new: int,
                    state: Dict[str, float]) -> float:
        # Over-migration: everything the layout maps onto the re-added
        # ranks, valid or stale alike.
        shares = self._shares()
        stored = self.cfg.dataset_bytes * self.cfg.replicas
        return stored * float(shares[k_old:k_new].sum())

    def shrink(self, k: int, target: int, dt: float,
               state: Dict[str, float]) -> int:
        # Uncontrolled re-integration can delay sizing down, but only
        # when the debt is large (abrupt resizes).
        if self._migration_blocks_shrink(k, dt, state):
            return k
        return max(target, self.floor)


class PrimarySelectivePolicy(_ElasticPolicyBase):
    """Primary servers + equal-work layout + selective, rate-limited
    re-integration (the paper's complete system)."""

    name = "primary-selective"

    def drain_capacity(self, k: int) -> float:
        # The token bucket caps re-integration traffic.
        return min(self.cfg.selective_rate_limit,
                   super().drain_capacity(k))

    def track_dirty(self, k: int, write_load: float, dt: float,
                    state: Dict[str, float]) -> None:
        if k >= self.cfg.n_max:
            return
        shares = self._shares()
        offload_share = float(shares[k:].sum())
        state["dirty"] += write_load * self.cfg.replicas * offload_share * dt

    def growth_debt(self, k_old: int, k_new: int,
                    state: Dict[str, float]) -> float:
        # Only the dirty (offloaded) bytes that map onto the re-added
        # ranks move; the rest of the pool stays dirty until the ranks
        # holding it return.
        shares = self._shares()
        inactive = float(shares[k_old:].sum())
        if inactive <= 0 or state["dirty"] <= 0:
            return 0.0
        added = float(shares[k_old:k_new].sum())
        portion = state["dirty"] * (added / inactive)
        state["dirty"] -= portion
        return portion

    # Shrink stays instant even while draining: Algorithm 2 simply
    # skips entries whose version has no fewer servers than the current
    # one, so pending work never blocks sizing down.


class GreenCHTPolicy(_ElasticPolicyBase):
    """The GreenCHT-style tiered baseline (§VI related work).

    GreenCHT (Zhao et al., MSST'15) partitions the servers into power
    *tiers*; a whole tier powers down or up together, with replicas
    spread across tiers so a tier shutdown never loses data.  Its
    weakness — the reason the paper builds per-server elasticity — is
    granularity: the active count is quantised to tier boundaries, so
    every resize rounds *up* to the next whole tier.

    Model: tier boundaries at ``p`` (the always-on tier, mirroring the
    replica-holding top tier) followed by ``num_tiers - 1`` equal
    slices of the rest.  Like the paper's "full" configuration it does
    not track dirty data, so tier power-ups re-integrate everything
    mapped onto the tier.
    """

    name = "greencht"

    def __init__(self, config: PolicyConfig, num_tiers: int = 4) -> None:
        super().__init__(config)
        if num_tiers < 2:
            raise ValueError("need at least 2 tiers")
        boundaries = [config.p]
        rest = config.n_max - config.p
        for i in range(1, num_tiers):
            boundaries.append(config.p + round(rest * i / (num_tiers - 1)))
        #: Legal active counts, ascending (tier prefix sums).
        self.boundaries = sorted(set(boundaries))

    def _quantise(self, k: int) -> int:
        """Round up to the next tier boundary."""
        for b in self.boundaries:
            if k <= b:
                return b
        return self.boundaries[-1]

    @property
    def floor(self) -> int:
        return self.boundaries[0]

    def growth_debt(self, k_old: int, k_new: int,
                    state: Dict[str, float]) -> float:
        shares = self._shares()
        stored = self.cfg.dataset_bytes * self.cfg.replicas
        return stored * float(shares[k_old:k_new].sum())

    def quantise_target(self, target: int) -> int:
        return self._quantise(target)

    def shrink(self, k: int, target: int, dt: float,
               state: Dict[str, float]) -> int:
        if self._migration_blocks_shrink(k, dt, state):
            return k
        return self._quantise(max(target, self.floor))


_POLICIES = {
    "original-ch": OriginalCHPolicy,
    "primary-full": PrimaryFullPolicy,
    "primary-selective": PrimarySelectivePolicy,
    "greencht": GreenCHTPolicy,
}


def simulate_policy(name: str, trace: LoadTrace, config: PolicyConfig,
                    requested: "np.ndarray | None" = None) -> PolicyResult:
    """Run one named policy over *trace* (optionally chasing a
    controller's *requested* series instead of the clairvoyant
    ideal)."""
    try:
        cls = _POLICIES[name]
    except KeyError:
        raise ValueError(
            f"unknown policy {name!r}; choose from {sorted(_POLICIES)}"
        ) from None
    return cls(config).simulate(trace, requested=requested)
