"""Resizing controllers: deciding *when* to resize, from observed load.

The paper's closing future work: "a resizing policy based on workload
profiling and prediction" (§VII; §VI surveys AutoScale, Lim et al.,
Elastisizer, SCADS Director, AGILE as the complementary line of work).
The mechanisms in :mod:`repro.policy.resizer` assume a clairvoyant
target (the ideal series); these controllers produce *realisable*
target series from load the system has actually seen:

* :class:`ReactiveController` — follow the last observed load with a
  headroom multiplier; grow immediately, shrink only after the load
  has stayed low for a hold-down window (AutoScale-style hysteresis);
* :class:`PredictiveController` — double-exponential (Holt) smoothing
  forecast one horizon ahead, plus headroom — adds servers *before*
  the ramp arrives (AGILE-style);
* :class:`OracleController` — the clairvoyant ideal, for reference.

Controllers compose with any resizing policy:
``simulate_policy(name, trace, cfg, requested=ctrl.requested(trace, cfg))``.

Provisioning quality is judged by :func:`evaluate_provisioning`: the
fraction of time the active set could not carry the offered load and
the average shortfall — the trade-off against machine hours.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Dict

import numpy as np

from repro.policy.resizer import PolicyConfig
from repro.workloads.trace import LoadTrace

__all__ = [
    "OracleController",
    "ReactiveController",
    "PredictiveController",
    "evaluate_provisioning",
]


@dataclass(frozen=True)
class OracleController:
    """Clairvoyant reference: request exactly the ideal count."""

    name: str = "oracle"

    def requested(self, trace: LoadTrace,
                  config: PolicyConfig) -> np.ndarray:
        need = np.ceil(trace.load / config.per_server_bw).astype(int)
        return np.clip(need, 1, config.n_max)


@dataclass(frozen=True)
class ReactiveController:
    """Hysteresis follower.

    Each sample it sees the *previous* sample's load (you cannot react
    to load you have not observed), requests ``headroom`` times the
    servers that load needs, and only shrinks after the implied target
    has been below the current request for ``hold_samples`` in a row —
    the AutoScale-style guard against flapping on transient dips.
    """

    headroom: float = 1.2
    hold_samples: int = 5
    name: str = "reactive"

    def __post_init__(self) -> None:
        if self.headroom < 1.0:
            raise ValueError("headroom must be >= 1")
        if self.hold_samples < 1:
            raise ValueError("hold_samples must be >= 1")

    def requested(self, trace: LoadTrace,
                  config: PolicyConfig) -> np.ndarray:
        load = trace.load
        out = np.empty(load.size, dtype=int)
        current = max(1, math.ceil(
            load[0] * self.headroom / config.per_server_bw))
        below = 0
        for t in range(load.size):
            observed = load[t - 1] if t > 0 else load[0]
            want = max(1, math.ceil(
                observed * self.headroom / config.per_server_bw))
            if want >= current:
                current = want          # grow immediately
                below = 0
            else:
                below += 1
                if below >= self.hold_samples:
                    current = want      # shrink after the hold-down
                    below = 0
            out[t] = min(config.n_max, current)
        return out


@dataclass(frozen=True)
class PredictiveController:
    """Holt linear-trend forecaster.

    Maintains level+trend estimates of the load and requests capacity
    for the forecast ``horizon_samples`` ahead (resizing takes time to
    pay off, so provision for where the load is *going*), with the
    same headroom multiplier.  Forecasts are floored at the observed
    load so a falling forecast never undercuts what is already there.
    """

    alpha: float = 0.5      # level smoothing
    beta: float = 0.3       # trend smoothing
    horizon_samples: int = 3
    headroom: float = 1.1
    name: str = "predictive"

    def __post_init__(self) -> None:
        for field_name in ("alpha", "beta"):
            v = getattr(self, field_name)
            if not 0 < v <= 1:
                raise ValueError(f"{field_name} must be in (0, 1]")
        if self.horizon_samples < 0:
            raise ValueError("horizon_samples must be >= 0")
        if self.headroom < 1.0:
            raise ValueError("headroom must be >= 1")

    def requested(self, trace: LoadTrace,
                  config: PolicyConfig) -> np.ndarray:
        load = trace.load
        out = np.empty(load.size, dtype=int)
        level = float(load[0])
        trend = 0.0
        for t in range(load.size):
            observed = load[t - 1] if t > 0 else load[0]
            prev_level = level
            level = self.alpha * observed + (1 - self.alpha) * (level + trend)
            trend = (self.beta * (level - prev_level)
                     + (1 - self.beta) * trend)
            forecast = max(observed,
                           level + self.horizon_samples * trend)
            want = max(1, math.ceil(
                forecast * self.headroom / config.per_server_bw))
            out[t] = min(config.n_max, want)
        return out


def evaluate_provisioning(trace: LoadTrace, servers: np.ndarray,
                          per_server_bw: float) -> Dict[str, float]:
    """Provisioning quality of an active-server series.

    Returns the violation fraction (samples where capacity < offered
    load), the mean shortfall across violating samples (as a fraction
    of the load), and the mean over-provisioned servers.
    """
    if len(servers) != len(trace.load):
        raise ValueError("series length mismatch")
    capacity = servers * per_server_bw
    short = trace.load - capacity
    violating = short > 0
    n = trace.load.size
    shortfall = 0.0
    if violating.any():
        shortfall = float(
            (short[violating] / trace.load[violating]).mean())
    need = np.ceil(trace.load / per_server_bw)
    return {
        "violation_fraction": float(violating.sum() / n),
        "mean_shortfall_fraction": shortfall,
        "mean_extra_servers": float(np.maximum(servers - need, 0).mean()),
    }
