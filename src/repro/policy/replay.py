"""Object-level trace replay — cross-validating the fluid model.

The §V-B analysis (:mod:`repro.policy.resizer`) is a *fluid* model:
migration volumes are estimated from layout shares and dataset sizes.
This module replays a trace window against the **real** cluster
machinery — actual objects, actual placements, actual dirty entries,
actual re-integration byte counts — applying the same operational
rules (instant elastic resize, serialized baseline removals, migration
debt occupying disk bandwidth).  If the fluid model is honest, both
levels must tell the same story: same policy ordering, comparable
relative machine hours.

Replay is orders of magnitude more expensive than the fluid model
(every write is a placement), so it runs on short windows; the
validation bench replays a couple of hours of CC-a.
"""

from __future__ import annotations

import math
from dataclasses import dataclass


import numpy as np

from repro.cluster.cluster import ElasticCluster, OriginalCHCluster
from repro.cluster.recovery import plan_departure_recovery
from repro.policy.ideal import ideal_servers
from repro.policy.resizer import PolicyConfig
from repro.workloads.trace import LoadTrace

__all__ = ["ReplayResult", "replay_policy"]


@dataclass
class ReplayResult:
    """Measured outcome of one object-level replay."""

    name: str
    servers: np.ndarray
    dt: float
    ideal: np.ndarray
    migrated_bytes: float
    rereplicated_bytes: float
    objects_written: int

    @property
    def machine_hours(self) -> float:
        return float(self.servers.sum() * self.dt / 3600.0)

    @property
    def relative_machine_hours(self) -> float:
        return self.machine_hours / float(
            self.ideal.sum() * self.dt / 3600.0)


def replay_policy(
    name: str,
    trace: LoadTrace,
    config: PolicyConfig,
    object_size: int = 4 * 1024 * 1024,
    preload_objects: int = 500,
    seed: int = 7,
) -> ReplayResult:
    """Replay *trace* against a real cluster under policy *name*.

    Parameters mirror :func:`repro.policy.resizer.simulate_policy`;
    *preload_objects* populates the cluster before the window starts
    (the migration-relevant resident data).
    """
    if name == "original-ch":
        return _replay_original(trace, config, object_size,
                                preload_objects)
    if name in ("primary-full", "primary-selective"):
        return _replay_elastic(name, trace, config, object_size,
                               preload_objects)
    raise ValueError(f"unknown policy for replay: {name!r}")


def _write_stream(cluster, trace, t, dt, object_size, state) -> None:
    """Materialise one sample's writes as objects."""
    state["carry"] += trace.write_load[t] * dt
    while state["carry"] >= object_size:
        cluster.write(state["oid"], object_size)
        state["oid"] += 1
        state["carry"] -= object_size


def _extra_servers(drained_bytes: float, dt: float,
                   config: PolicyConfig) -> int:
    """Servers whose disks the measured migration traffic occupied."""
    return math.ceil(drained_bytes / dt / config.disk_bw) \
        if drained_bytes > 0 else 0


def _replay_elastic(name: str, trace: LoadTrace, config: PolicyConfig,
                    object_size: int, preload: int) -> ReplayResult:
    cluster = ElasticCluster(n=config.n_max, replicas=config.replicas,
                             p=config.p)
    for oid in range(preload):
        cluster.write(oid, object_size)

    ideal = ideal_servers(trace.load, config.per_server_bw, config.n_max)
    dt = trace.dt
    state = {"oid": preload, "carry": 0.0}
    servers = np.empty(len(trace), dtype=int)
    migrated = 0.0
    debt = 0.0      # primary-full: bytes still draining

    k = max(config.p, int(ideal[0]))
    cluster.resize(k)

    for t in range(len(trace)):
        drained = 0.0
        if name == "primary-selective":
            budget = int(config.selective_rate_limit * dt)
            report = cluster.run_selective_reintegration(
                budget_bytes=budget)
            drained = report.bytes_migrated
            migrated += drained
        else:
            if debt > 0:
                cap = (config.migration_fraction * cluster.num_active
                       * config.disk_bw * dt)
                drained = min(debt, cap)
                debt -= drained

        target = int(min(config.n_max,
                         max(config.p, int(ideal[t])
                             + _extra_servers(drained, dt, config))))
        if target > cluster.num_active:
            cluster.resize(target)
            if name == "primary-full":
                moved = cluster.run_full_reintegration()
                migrated += moved
                debt += moved   # logical move now, bandwidth paid over time
        elif target < cluster.num_active:
            blocked = (name == "primary-full"
                       and debt > config.migration_fraction
                       * cluster.num_active * config.disk_bw * dt)
            if not blocked:
                cluster.resize(target)

        _write_stream(cluster, trace, t, dt, object_size, state)
        servers[t] = cluster.num_active

    return ReplayResult(
        name=name, servers=servers, dt=dt, ideal=ideal,
        migrated_bytes=migrated, rereplicated_bytes=0.0,
        objects_written=state["oid"] - preload,
    )


def _replay_original(trace: LoadTrace, config: PolicyConfig,
                     object_size: int, preload: int) -> ReplayResult:
    cluster = OriginalCHCluster(n=config.n_max, replicas=config.replicas,
                                vnodes_per_server=max(
                                    64, 4_096 // config.n_max))
    for oid in range(preload):
        cluster.write(oid, object_size)

    ideal = ideal_servers(trace.load, config.per_server_bw, config.n_max)
    dt = trace.dt
    state = {"oid": preload, "carry": 0.0}
    servers = np.empty(len(trace), dtype=int)
    migrated = 0.0
    rereplicated = 0.0
    debt = 0.0
    removal_credit = 0.0

    for t in range(len(trace)):
        drained = 0.0
        if debt > 0:
            cap = (config.migration_fraction * cluster.num_active
                   * config.disk_bw * dt)
            drained = min(debt, cap)
            debt -= drained

        target = int(min(config.n_max,
                         max(config.replicas, int(ideal[t])
                             + _extra_servers(drained, dt, config))))

        if target > cluster.num_active:
            removal_credit = 0.0
            missing = [r for r in cluster.servers
                       if r not in cluster.ring]
            for rank in sorted(missing)[:target - cluster.num_active]:
                moved = cluster.add_server(rank)
                migrated += moved
                debt += moved
        elif target < cluster.num_active and debt <= (
                config.migration_fraction * cluster.num_active
                * config.disk_bw * dt):
            # Sequential departures, each gated on its measured
            # clean-up volume.
            removal_credit += dt
            while cluster.num_active > max(target, config.replicas):
                victim = max(cluster.members)
                plan = plan_departure_recovery(cluster, victim)
                rate = (config.recovery_fraction * cluster.num_active
                        * config.disk_bw)
                needed = plan.total_bytes / rate
                if removal_credit < needed:
                    break
                removal_credit -= needed
                rereplicated += cluster.remove_server(victim)

        _write_stream(cluster, trace, t, dt, object_size, state)
        servers[t] = cluster.num_active

    return ReplayResult(
        name="original-ch", servers=servers, dt=dt, ideal=ideal,
        migrated_bytes=migrated, rereplicated_bytes=rereplicated,
        objects_written=state["oid"] - preload,
    )
