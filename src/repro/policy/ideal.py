"""The ideal active-server series.

§V-B: "The ideal number of servers for each time period is
proportional to the data size processed."  The ideal policy tracks the
load perfectly and instantaneously, with no migration or clean-up IO —
the lower bound every real policy is compared against in Table II.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.workloads.trace import LoadTrace

__all__ = ["ideal_servers", "IdealPolicy"]


def ideal_servers(load: np.ndarray, per_server_bw: float,
                  n_max: int, n_min: int = 1) -> np.ndarray:
    """Servers needed to carry *load* at *per_server_bw* each, clamped
    to ``[n_min, n_max]``.

    A server is charged for any fraction of its bandwidth
    (``ceil``) — you cannot power on half a machine.
    """
    if per_server_bw <= 0:
        raise ValueError("per_server_bw must be positive")
    if not 1 <= n_min <= n_max:
        raise ValueError("need 1 <= n_min <= n_max")
    need = np.ceil(load / per_server_bw).astype(int)
    return np.clip(need, n_min, n_max)


@dataclass(frozen=True)
class IdealPolicy:
    """The oracle resizer: follow :func:`ideal_servers` exactly."""

    per_server_bw: float
    n_max: int
    n_min: int = 1

    name: str = "ideal"

    def servers(self, trace: LoadTrace) -> np.ndarray:
        return ideal_servers(trace.load, self.per_server_bw,
                             self.n_max, self.n_min)

    def machine_hours(self, trace: LoadTrace) -> float:
        return float(self.servers(trace).sum() * trace.dt / 3600.0)
