"""Trace-driven elasticity policy analysis (§V-B).

Given an offered-load trace, compute — per resizing policy — the
active-server series and machine hours, reproducing Figures 8/9 and
Table II.  The methodology follows the paper: "We calculate the delay
time and extra IOs according to the trace data and deduce the number
of servers needed" for the three cases:

* ``original-ch`` — uniform layout; sizing down requires clean-up
  (sequential per-server re-replication delays), sizing up triggers
  full migration IO;
* ``primary-full`` — primary servers + equal-work layout, resize is
  instant (floored at p), but re-integration is *full* (over-migrates
  everything on re-added servers);
* ``primary-selective`` — as above with selective, rate-limited
  re-integration of dirty data only.
"""

from repro.policy.ideal import ideal_servers, IdealPolicy
from repro.policy.resizer import (
    PolicyConfig,
    PolicyResult,
    OriginalCHPolicy,
    PrimaryFullPolicy,
    PrimarySelectivePolicy,
    GreenCHTPolicy,
    simulate_policy,
)
from repro.policy.controller import (
    OracleController,
    ReactiveController,
    PredictiveController,
    evaluate_provisioning,
)
from repro.policy.replay import ReplayResult, replay_policy
from repro.policy.analysis import TraceAnalysis, analyze_trace

__all__ = [
    "ideal_servers",
    "IdealPolicy",
    "PolicyConfig",
    "PolicyResult",
    "OriginalCHPolicy",
    "PrimaryFullPolicy",
    "PrimarySelectivePolicy",
    "GreenCHTPolicy",
    "simulate_policy",
    "OracleController",
    "ReactiveController",
    "PredictiveController",
    "evaluate_provisioning",
    "ReplayResult",
    "replay_policy",
    "TraceAnalysis",
    "analyze_trace",
]
