"""Step-function time series.

Active-server counts (Figures 2, 8, 9) and throughput samples
(Figures 3, 7) are step-wise constant signals; :class:`StepSeries`
stores them as parallel arrays and provides the integral / resample
operations the machine-hour accounting and the plots need.
"""

from __future__ import annotations

from typing import Iterable, List, Sequence, Tuple

import numpy as np

__all__ = ["StepSeries"]


class StepSeries:
    """``value[i]`` holds from ``time[i]`` until ``time[i+1]``.

    Times must be strictly increasing.  The series is immutable once
    built via :meth:`from_points`; the incremental builder
    (:meth:`append`) coalesces repeated values by default — but the
    sample *time* is never lost: :attr:`end_time` always reports the
    last appended time, even when its value was coalesced into the
    previous breakpoint.
    """

    def __init__(self) -> None:
        self._times: List[float] = []
        self._values: List[float] = []
        self._end: float = float("-inf")

    @classmethod
    def from_points(cls, times: Sequence[float],
                    values: Sequence[float],
                    coalesce: bool = True) -> "StepSeries":
        if len(times) != len(values):
            raise ValueError("times and values must have equal length")
        s = cls()
        for t, v in zip(times, values):
            s.append(t, v, coalesce=coalesce)
        return s

    def append(self, t: float, value: float, coalesce: bool = True) -> None:
        """Add a sample.  With *coalesce* (default), a value equal to the
        previous one keeps the existing breakpoint — but *t* still
        advances :attr:`end_time`, so the known extent of the series is
        never silently shortened.  Pass ``coalesce=False`` to keep every
        breakpoint (e.g. raw sample logs)."""
        if self._times and t <= self._times[-1]:
            raise ValueError(
                f"times must be strictly increasing: {t} <= {self._times[-1]}")
        self._end = max(self._end, float(t))
        if coalesce and self._values and self._values[-1] == value:
            return  # coalesce: step functions only change on change
        self._times.append(float(t))
        self._values.append(float(value))

    @property
    def end_time(self) -> float:
        """Time of the last appended sample — the series extent, which
        survives coalescing (a run ending in a long constant stretch
        still reports when its final sample landed)."""
        if not self._times:
            raise ValueError("empty series")
        return self._end

    # ------------------------------------------------------------------
    def __len__(self) -> int:
        return len(self._times)

    @property
    def times(self) -> np.ndarray:
        return np.asarray(self._times)

    @property
    def values(self) -> np.ndarray:
        return np.asarray(self._values)

    def value_at(self, t: float) -> float:
        """The step value in effect at time *t* (before the first
        breakpoint the first value is assumed)."""
        if not self._times:
            raise ValueError("empty series")
        idx = int(np.searchsorted(self._times, t, side="right")) - 1
        return self._values[max(0, idx)]

    # ------------------------------------------------------------------
    def integral(self, t0: float, t1: float) -> float:
        """∫ value dt over [t0, t1] — machine-seconds when the value is
        an active-server count."""
        if t1 < t0:
            raise ValueError("t1 must be >= t0")
        if not self._times:
            raise ValueError("empty series")
        total = 0.0
        ts = self._times
        vs = self._values
        n = len(ts)
        for i in range(n):
            seg_start = ts[i]
            seg_end = ts[i + 1] if i + 1 < n else t1
            lo = max(seg_start, t0)
            hi = min(seg_end, t1)
            if hi > lo:
                total += vs[i] * (hi - lo)
        # Before the first breakpoint, extend the first value backwards.
        if t0 < ts[0]:
            total += vs[0] * (min(t1, ts[0]) - t0)
        return total

    def mean(self, t0: float, t1: float) -> float:
        if t1 <= t0:
            raise ValueError("t1 must be > t0")
        return self.integral(t0, t1) / (t1 - t0)

    def sample(self, grid: Iterable[float]) -> np.ndarray:
        """Values at each grid point (for aligned comparison of two
        series)."""
        return np.array([self.value_at(t) for t in grid])

    def max(self) -> float:
        return float(np.max(self.values))

    def min(self) -> float:
        return float(np.min(self.values))

    def points(self) -> List[Tuple[float, float]]:
        return list(zip(self._times, self._values))
