"""Data-distribution statistics for layout validation (Figure 5).

These quantify how well a measured per-rank block distribution matches
the equal-work target: the normalised shape, its correlation with the
ideal curve, and inequality measures used by the vnode-budget ablation.
"""

from __future__ import annotations

from typing import Dict, Mapping, Sequence

import numpy as np

__all__ = ["normalized_shape", "gini", "distribution_stats",
           "shape_correlation", "equal_work_reference",
           "replica_counts_from_matrix"]


def replica_counts_from_matrix(servers: np.ndarray,
                               ranks: Sequence[int]) -> Dict[int, int]:
    """Per-rank replica counts from a bulk placement's ``(N, r)``
    server matrix (``BulkPlacement.servers``) — one ``bincount``
    instead of N·r dict increments.  Unplaceable rows (``-1``) are
    ignored."""
    flat = np.asarray(servers).ravel()
    flat = flat[flat >= 0]
    per_rank = np.bincount(flat, minlength=(max(ranks) + 1) if ranks else 0)
    return {int(r): int(per_rank[r]) for r in ranks}


def normalized_shape(counts: Mapping[int, float]) -> Dict[int, float]:
    """Counts per rank scaled to sum to 1, keyed by rank."""
    total = float(sum(counts.values()))
    if total <= 0:
        raise ValueError("empty distribution")
    return {rank: c / total for rank, c in sorted(counts.items())}


def gini(values: Sequence[float]) -> float:
    """Gini coefficient of a non-negative distribution (0 = perfectly
    even, →1 = concentrated).  The equal-work layout is *intentionally*
    uneven, so this is reported, not asserted small."""
    arr = np.sort(np.asarray(values, dtype=float))
    if arr.size == 0:
        raise ValueError("empty distribution")
    if np.any(arr < 0):
        raise ValueError("negative values")
    total = arr.sum()
    if total == 0:
        return 0.0
    n = arr.size
    index = np.arange(1, n + 1)
    return float((2 * (index * arr).sum() - (n + 1) * total) / (n * total))


def equal_work_reference(n: int, p: int) -> Dict[int, float]:
    """The ideal equal-work block fractions for an n-server, p-primary,
    r-replica cluster with one copy pinned to primaries.

    Primaries each take ``1/(r·p)`` of all replicas (one of the r
    copies, split evenly over p); secondary rank i takes the remaining
    ``(r-1)/r`` in proportion to ``1/i``.  With r folded out the shape
    depends only on n and p for the 2-way case the paper evaluates;
    the general form is exposed via :func:`distribution_stats`.
    """
    if not 1 <= p < n:
        raise ValueError("need 1 <= p < n")
    sec = {i: 1.0 / i for i in range(p + 1, n + 1)}
    sec_total = sum(sec.values())
    # r=2: half the replicas on primaries, half on secondaries.
    out = {rank: 0.5 / p for rank in range(1, p + 1)}
    out.update({i: 0.5 * w / sec_total for i, w in sec.items()})
    return out


def shape_correlation(observed: Mapping[int, float],
                      reference: Mapping[int, float]) -> float:
    """Pearson correlation between an observed per-rank distribution
    and a reference shape (aligned on common ranks)."""
    ranks = sorted(set(observed) & set(reference))
    if len(ranks) < 2:
        raise ValueError("need at least two common ranks")
    a = np.array([observed[r] for r in ranks], dtype=float)
    b = np.array([reference[r] for r in ranks], dtype=float)
    if np.allclose(a, a[0]) or np.allclose(b, b[0]):
        raise ValueError("degenerate (constant) distribution")
    return float(np.corrcoef(a, b)[0, 1])


def distribution_stats(counts: Mapping[int, float]) -> Dict[str, float]:
    """Summary bundle: total, max/mean ratio, Gini, monotonicity
    violations (count of adjacent rank pairs where a lower rank stores
    *less* — the equal-work curve must be non-increasing)."""
    ranks = sorted(counts)
    vals = np.array([counts[r] for r in ranks], dtype=float)
    if vals.size == 0:
        raise ValueError("empty distribution")
    mean = vals.mean()
    violations = int(np.sum(np.diff(vals) > 0))
    return {
        "total": float(vals.sum()),
        "max_over_mean": float(vals.max() / mean) if mean > 0 else 0.0,
        "gini": gini(vals),
        "monotonicity_violations": violations,
    }
