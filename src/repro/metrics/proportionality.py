"""Read-performance proportionality — measuring the equal-work claim.

§III-C asserts the equal-work layout "allows power proportionality and
read performance proportionality at the same time", deferring the
derivation to Rabbit.  This module *measures* it: given a placement
and an active prefix of k servers, the maximum aggregate rate at which
a uniformly random read workload can be served is a max-flow problem —
each object must be read from one of its active replica holders, no
server beyond its disk bandwidth.

``read_capacity(ech, k, ...)`` computes that rate by bisecting on the
aggregate rate R and checking feasibility with a max-flow over the
(holder-set group) → (server) bipartite network.  A layout is
performance-proportional when ``capacity(k) ≈ (k / n) * capacity(n)``
for every k the power policy can choose.
"""

from __future__ import annotations

from collections import Counter
from typing import Dict, FrozenSet, Iterable, Optional, Tuple

from repro.core.elastic import ElasticConsistentHash

__all__ = ["holder_groups", "read_capacity", "proportionality_curve"]


def holder_groups(ech: ElasticConsistentHash,
                  active_ranks: FrozenSet[int],
                  probe_oids: Iterable[int],
                  ) -> Tuple[Dict[FrozenSet[int], int], int, int]:
    """Group sampled objects by their set of *active* replica holders.

    Returns (groups, total objects, unavailable objects).  Placement is
    evaluated at full power — the data layout — and then filtered to
    the active set, mirroring reads against a shrunken cluster.
    """
    oid_list = list(probe_oids)
    total = len(oid_list)
    if not oid_list:
        return {}, 0, 0
    bulk = ech.locate_bulk(oid_list, version=1)
    if not bulk.all_ok:
        import numpy as np
        bad = int(np.flatnonzero(~bulk.ok)[0])
        ech.locate(oid_list[bad], version=1)   # raises with the oid
    groups: Counter = Counter()
    unavailable = 0
    for row in bulk.rows():
        holders = frozenset(s for s in row if s in active_ranks)
        if holders:
            groups[holders] += 1
        else:
            unavailable += 1
    return dict(groups), total, unavailable


def _feasible(groups: Dict[FrozenSet[int], int], total: int,
              rate: float, per_server_bw: float,
              active_ranks: FrozenSet[int]) -> bool:
    """Can aggregate *rate* be served?  Max-flow over
    source → group (demand) → server (capacity) → sink."""
    import networkx as nx  # optional dependency: only this audit needs it
    g = nx.DiGraph()
    demand_total = 0.0
    for holders, count in groups.items():
        demand = rate * count / total
        demand_total += demand
        gnode = ("g", holders)
        g.add_edge("src", gnode, capacity=demand)
        for server in holders:
            g.add_edge(gnode, ("s", server), capacity=float("inf"))
    for server in active_ranks:
        g.add_edge(("s", server), "dst", capacity=per_server_bw)
    if demand_total == 0:
        return True
    flow = nx.maximum_flow_value(g, "src", "dst")
    return flow >= demand_total * (1 - 1e-9)


def read_capacity(ech: ElasticConsistentHash, k: int,
                  per_server_bw: float = 64e6,
                  probe_oids: Iterable[int] = range(4_000),
                  tolerance: float = 0.005) -> float:
    """Maximum aggregate read rate with the first *k* chain ranks
    active (bytes/s), for a uniform read mix over the probe objects.

    Objects with no active replica are unservable; their demand share
    caps the achievable rate at 0 (availability loss), which is what
    the measurement will show for non-primary layouts at small k.
    """
    if not 1 <= k <= ech.n:
        raise ValueError(f"k out of range 1..{ech.n}")
    active = frozenset(range(1, k + 1))
    groups, total, unavailable = holder_groups(ech, active, probe_oids)
    if unavailable:
        return 0.0  # a uniform mix hits an unservable object

    lo, hi = 0.0, per_server_bw * k
    while hi - lo > tolerance * per_server_bw:
        mid = (lo + hi) / 2
        if _feasible(groups, total, mid, per_server_bw, active):
            lo = mid
        else:
            hi = mid
    return lo


def proportionality_curve(ech: ElasticConsistentHash,
                          per_server_bw: float = 64e6,
                          probe_oids: Optional[Iterable[int]] = None,
                          ks: Optional[Iterable[int]] = None,
                          ) -> Dict[int, float]:
    """``{k: read capacity}`` over the active counts the power policy
    can choose (p..n by default)."""
    if probe_oids is None:
        probe_oids = range(4_000)
    probe = list(probe_oids)
    if ks is None:
        ks = range(ech.min_active, ech.n + 1)
    return {k: read_capacity(ech, k, per_server_bw, probe)
            for k in ks}
