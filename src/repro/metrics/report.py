"""ASCII rendering for the benchmark harness.

Every bench prints the paper's table rows / figure series next to the
measured ones; these helpers keep that output aligned and diff-able
(EXPERIMENTS.md embeds it verbatim).
"""

from __future__ import annotations

from typing import Iterable, List, Mapping, Optional, Sequence

__all__ = ["render_table", "render_series", "render_distribution"]


def render_table(headers: Sequence[str],
                 rows: Iterable[Sequence[object]],
                 title: Optional[str] = None) -> str:
    """Fixed-width table with a rule under the header."""
    srows = [[_fmt(c) for c in row] for row in rows]
    widths = [len(h) for h in headers]
    for row in srows:
        if len(row) != len(headers):
            raise ValueError("row width does not match headers")
        for i, cell in enumerate(row):
            widths[i] = max(widths[i], len(cell))
    lines: List[str] = []
    if title:
        lines.append(title)
    lines.append("  ".join(h.ljust(w) for h, w in zip(headers, widths)))
    lines.append("  ".join("-" * w for w in widths))
    for row in srows:
        lines.append("  ".join(c.ljust(w) for c, w in zip(row, widths)))
    return "\n".join(lines)


def render_series(times: Sequence[float],
                  series: Mapping[str, Sequence[float]],
                  every: int = 1,
                  time_label: str = "t",
                  title: Optional[str] = None) -> str:
    """Multiple aligned series as a table, one row per (subsampled)
    time point — the textual form of a figure."""
    names = list(series)
    for name in names:
        if len(series[name]) != len(times):
            raise ValueError(f"series {name!r} length mismatch")
    headers = [time_label] + names
    rows = []
    for i in range(0, len(times), max(1, every)):
        rows.append([times[i]] + [series[name][i] for name in names])
    return render_table(headers, rows, title=title)


def render_distribution(counts: Mapping[int, float],
                        width: int = 50,
                        title: Optional[str] = None) -> str:
    """Horizontal bar chart of a per-rank distribution (Figure 5 as
    ASCII)."""
    if not counts:
        raise ValueError("empty distribution")
    peak = max(counts.values())
    lines: List[str] = []
    if title:
        lines.append(title)
    for rank in sorted(counts):
        v = counts[rank]
        bar = "#" * (int(round(width * v / peak)) if peak > 0 else 0)
        lines.append(f"rank {rank:>3} | {bar:<{width}} {_fmt(v)}")
    return "\n".join(lines)


def _fmt(value: object) -> str:
    if isinstance(value, float):
        if value == 0:
            return "0"
        if abs(value) >= 1000 or abs(value) < 0.01:
            return f"{value:.3g}"
        return f"{value:.2f}"
    return str(value)
