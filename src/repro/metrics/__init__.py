"""Measurement helpers: time series, distribution statistics, and
ASCII reporting for the benchmark harness."""

from repro.metrics.timeline import StepSeries
from repro.metrics.distribution import (
    distribution_stats,
    gini,
    normalized_shape,
    shape_correlation,
)
from repro.metrics.proportionality import (
    holder_groups,
    proportionality_curve,
    read_capacity,
)
from repro.metrics.report import render_table, render_series

__all__ = [
    "StepSeries",
    "distribution_stats",
    "gini",
    "normalized_shape",
    "shape_correlation",
    "holder_groups",
    "proportionality_curve",
    "read_capacity",
    "render_table",
    "render_series",
]
