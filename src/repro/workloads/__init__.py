"""Workloads: the §V-A 3-phase benchmark and §V-B trace substitutes.

* :mod:`repro.workloads.three_phase` — the Filebench-like 3-phase
  workload (sequential write / rate-limited mixed / read-mostly);
* :mod:`repro.workloads.filebench` — Filebench-style personality
  definitions that compile to phases;
* :mod:`repro.workloads.synthetic` — load-profile primitives (diurnal
  cycles, bursts) for building trace-like series;
* :mod:`repro.workloads.cloudera` — synthetic stand-ins for the
  proprietary Cloudera customer traces CC-a and CC-b, matched to the
  published Table I envelopes;
* :mod:`repro.workloads.trace` — the load-trace container with
  CSV/JSONL persistence and resampling.
"""

from repro.workloads.trace import LoadTrace, TraceSpec
from repro.workloads.three_phase import Phase, three_phase_workload
from repro.workloads.synthetic import (
    diurnal_profile,
    burst_profile,
    synthesize_load,
)
from repro.workloads.filebench import (
    FilebenchPersonality,
    paper_three_phase,
)
from repro.workloads.cloudera import (
    CC_A,
    CC_B,
    generate_cc_a,
    generate_cc_b,
    generate_trace,
)

__all__ = [
    "LoadTrace",
    "TraceSpec",
    "Phase",
    "three_phase_workload",
    "FilebenchPersonality",
    "paper_three_phase",
    "diurnal_profile",
    "burst_profile",
    "synthesize_load",
    "CC_A",
    "CC_B",
    "generate_cc_a",
    "generate_cc_b",
    "generate_trace",
]
