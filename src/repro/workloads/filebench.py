"""Filebench-style workload personalities.

The paper drives its testbed with Filebench (§V-A): a *personality*
describes files, threads, IO sizes and per-second rate limits, and the
tool synthesises the corresponding IO stream.  This module models the
subset the evaluation needs: a personality compiles down to a
:class:`~repro.workloads.three_phase.Phase` (the fluid-model unit),
with IO-size-aware throughput derating — a spindle that sustains
100 MB/s streaming manages far less at 4 KiB ops, and the rate at
which a personality can *offer* load reflects that.

The three §V-A phases are provided as predefined personalities, plus
the classic Filebench trio (fileserver / webserver / varmail) for the
extra example scenarios.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from repro.workloads.three_phase import Phase

__all__ = [
    "FilebenchPersonality",
    "SEQ_WRITER",
    "RATE_LIMITED_MIXED",
    "READ_MOSTLY",
    "FILESERVER",
    "WEBSERVER",
    "VARMAIL",
    "paper_three_phase",
]

KB = 1024
MB = 10 ** 6
GB = 10 ** 9


@dataclass(frozen=True)
class FilebenchPersonality:
    """One workload personality.

    Attributes
    ----------
    name:
        Label ("fileserver", ...).
    nfiles / filesize:
        Working-set shape; the product is the default byte total a
        phase transfers.
    iosize:
        Per-operation transfer size.
    nthreads:
        Concurrent streams (bounds achievable parallel IOPS).
    write_ratio:
        Fraction of transferred bytes that are writes.
    rate_ops:
        Filebench's ``rate`` attribute — operations per second cap
        (``None`` = unthrottled).
    """

    name: str
    nfiles: int
    filesize: int
    iosize: int
    nthreads: int = 1
    write_ratio: float = 0.5
    rate_ops: Optional[float] = None

    def __post_init__(self) -> None:
        for field_name in ("nfiles", "filesize", "iosize", "nthreads"):
            if getattr(self, field_name) <= 0:
                raise ValueError(f"{field_name} must be positive")
        if not 0.0 <= self.write_ratio <= 1.0:
            raise ValueError("write_ratio must be in [0, 1]")
        if self.rate_ops is not None and self.rate_ops <= 0:
            raise ValueError("rate_ops must be positive")

    # ------------------------------------------------------------------
    @property
    def working_set_bytes(self) -> int:
        return self.nfiles * self.filesize

    def rate_cap_bytes(self) -> Optional[float]:
        """Byte-rate implied by the ``rate`` attribute."""
        if self.rate_ops is None:
            return None
        return self.rate_ops * self.iosize

    def effective_throughput(self, streaming_bw: float,
                             per_op_latency: float = 0.008) -> float:
        """Offered throughput against one spindle-class device.

        Small IOs pay a per-operation cost (seek + rotation, ~8 ms on
        the testbed's HDDs); *nthreads* ops overlap.  The achievable
        rate is the smaller of the streaming bandwidth and the
        IOPS-bound rate, further capped by the ``rate`` attribute.
        """
        if streaming_bw <= 0 or per_op_latency <= 0:
            raise ValueError("bandwidth and latency must be positive")
        iops_bound = self.nthreads * self.iosize / per_op_latency
        rate = min(streaming_bw, iops_bound)
        cap = self.rate_cap_bytes()
        if cap is not None:
            rate = min(rate, cap)
        return rate

    # ------------------------------------------------------------------
    def to_phase(self, total_bytes: Optional[float] = None,
                 phase_name: Optional[str] = None) -> Phase:
        """Compile to a fluid-model phase.

        *total_bytes* defaults to one pass over the working set.
        """
        return Phase(
            name=phase_name or self.name,
            total_bytes=float(total_bytes if total_bytes is not None
                              else self.working_set_bytes),
            write_ratio=self.write_ratio,
            rate_cap=self.rate_cap_bytes(),
        )


# ----------------------------------------------------------------------
# The paper's three phases (§V-A), as personalities.
# ----------------------------------------------------------------------

#: Phase 1: "sequentially write 2 GB of data to 7 files".
SEQ_WRITER = FilebenchPersonality(
    name="seq-writer", nfiles=7, filesize=2 * GB, iosize=1 * MB,
    nthreads=7, write_ratio=1.0)

#: Phase 2: rate-limited mix, 4.2 GB read + 8.4 GB written at 20 MB/s.
RATE_LIMITED_MIXED = FilebenchPersonality(
    name="rate-limited-mixed", nfiles=7, filesize=int(1.8 * GB),
    iosize=64 * KB, nthreads=4, write_ratio=8.4 / 12.6,
    rate_ops=20 * MB / (64 * KB))

#: Phase 3: "similar to the first phase, except that the write ratio
#: was 20%".
READ_MOSTLY = FilebenchPersonality(
    name="read-mostly", nfiles=7, filesize=2 * GB, iosize=1 * MB,
    nthreads=7, write_ratio=0.2)


def paper_three_phase(scale: float = 1.0) -> list[Phase]:
    """The §V-A workload via personalities — byte-identical to
    :func:`repro.workloads.three_phase.three_phase_workload`."""
    if scale <= 0:
        raise ValueError("scale must be positive")
    return [
        SEQ_WRITER.to_phase(total_bytes=14 * GB * scale,
                            phase_name="phase1"),
        RATE_LIMITED_MIXED.to_phase(total_bytes=12.6 * GB * scale,
                                    phase_name="phase2"),
        READ_MOSTLY.to_phase(total_bytes=14 * GB * scale,
                             phase_name="phase3"),
    ]


# ----------------------------------------------------------------------
# Classic Filebench personalities, for extra scenarios.
# ----------------------------------------------------------------------

FILESERVER = FilebenchPersonality(
    name="fileserver", nfiles=10_000, filesize=128 * KB,
    iosize=64 * KB, nthreads=50, write_ratio=0.33)

WEBSERVER = FilebenchPersonality(
    name="webserver", nfiles=100_000, filesize=16 * KB,
    iosize=16 * KB, nthreads=100, write_ratio=0.05)

VARMAIL = FilebenchPersonality(
    name="varmail", nfiles=50_000, filesize=8 * KB,
    iosize=8 * KB, nthreads=16, write_ratio=0.5)
