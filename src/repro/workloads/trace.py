"""Load traces: the IO demand a storage cluster sees over time.

The paper's trace analysis (§V-B) consumes "the I/O load on the storage
cluster over a long period of time"; :class:`LoadTrace` is that series
— bytes/second of offered load at a fixed sample interval, plus the
write fraction the policies need for offload accounting.  Table I's
published envelope lives in :class:`TraceSpec`.
"""

from __future__ import annotations

import csv
import io
import json
from dataclasses import dataclass
from pathlib import Path
from typing import Dict, Optional, Union

import numpy as np

__all__ = ["TraceSpec", "LoadTrace"]


@dataclass(frozen=True)
class TraceSpec:
    """A trace's published envelope (the paper's Table I row)."""

    name: str
    machines: int               # cluster size upper bound
    length_seconds: float       # trace duration
    bytes_processed: int        # total IO volume over the trace

    @property
    def length_days(self) -> float:
        return self.length_seconds / 86400.0

    @property
    def mean_load(self) -> float:
        """Average offered load in bytes/s."""
        return self.bytes_processed / self.length_seconds


class LoadTrace:
    """Offered-load series at fixed sampling.

    Parameters
    ----------
    load:
        Bytes/second per sample (non-negative).
    dt:
        Sample interval in seconds.
    write_fraction:
        Fraction of the load that is writes (scalar; the Cloudera
        MapReduce mix is write-heavy on the output side, we default to
        0.5).
    name:
        Label for reports.
    """

    def __init__(self, load: np.ndarray, dt: float,
                 write_fraction: float = 0.5,
                 name: str = "trace") -> None:
        load = np.asarray(load, dtype=float)
        if load.ndim != 1 or load.size == 0:
            raise ValueError("load must be a non-empty 1-D array")
        if np.any(load < 0):
            raise ValueError("load must be non-negative")
        if dt <= 0:
            raise ValueError("dt must be positive")
        if not 0.0 <= write_fraction <= 1.0:
            raise ValueError("write_fraction must be in [0, 1]")
        self.load = load
        self.dt = float(dt)
        self.write_fraction = float(write_fraction)
        self.name = name

    # ------------------------------------------------------------------
    def __len__(self) -> int:
        return self.load.size

    @property
    def duration(self) -> float:
        return self.load.size * self.dt

    @property
    def times(self) -> np.ndarray:
        """Sample start times in seconds."""
        return np.arange(self.load.size) * self.dt

    @property
    def total_bytes(self) -> float:
        return float(self.load.sum() * self.dt)

    @property
    def write_load(self) -> np.ndarray:
        return self.load * self.write_fraction

    def stats(self) -> Dict[str, float]:
        return {
            "duration_s": self.duration,
            "total_bytes": self.total_bytes,
            "mean_load": float(self.load.mean()),
            "peak_load": float(self.load.max()),
            "p95_load": float(np.percentile(self.load, 95)),
            "burstiness": float(self.load.max() / self.load.mean())
            if self.load.mean() > 0 else 0.0,
        }

    def resizing_frequency(self, per_server_bw: float) -> float:
        """Mean per-sample change in the *ideal* server count — the
        paper's observation that CC-a "has significantly higher
        resizing frequency" is this number."""
        ideal = np.ceil(self.load / per_server_bw)
        return float(np.abs(np.diff(ideal)).mean())

    # ------------------------------------------------------------------
    def window(self, start_s: float, duration_s: float) -> "LoadTrace":
        """A sub-trace (the figures plot a ~250-minute window)."""
        i0 = int(start_s / self.dt)
        i1 = i0 + max(1, int(round(duration_s / self.dt)))
        if i0 < 0 or i1 > self.load.size:
            raise ValueError("window out of range")
        return LoadTrace(self.load[i0:i1].copy(), self.dt,
                         self.write_fraction, f"{self.name}[window]")

    def resample(self, new_dt: float) -> "LoadTrace":
        """Average-preserving resample to a coarser interval."""
        if new_dt < self.dt:
            raise ValueError("can only coarsen")
        factor = int(round(new_dt / self.dt))
        if abs(factor * self.dt - new_dt) > 1e-9:
            raise ValueError("new_dt must be a multiple of dt")
        n = (self.load.size // factor) * factor
        if n == 0:
            raise ValueError("trace too short for that interval")
        coarse = self.load[:n].reshape(-1, factor).mean(axis=1)
        return LoadTrace(coarse, new_dt, self.write_fraction,
                         f"{self.name}@{new_dt:g}s")

    def scaled_to_total(self, bytes_processed: float) -> "LoadTrace":
        """Rescale so the integral matches a target volume (used to pin
        synthetic traces to Table I's bytes-processed column)."""
        cur = self.total_bytes
        if cur <= 0:
            raise ValueError("cannot scale an all-zero trace")
        return LoadTrace(self.load * (bytes_processed / cur), self.dt,
                         self.write_fraction, self.name)

    # ------------------------------------------------------------------
    # persistence
    # ------------------------------------------------------------------
    def to_csv(self, path: Union[str, Path]) -> None:
        with open(path, "w", newline="") as fh:
            w = csv.writer(fh)
            w.writerow(["time_s", "load_bytes_per_s"])
            for t, v in zip(self.times, self.load):
                w.writerow([f"{t:.6g}", f"{v:.6g}"])

    @classmethod
    def from_csv(cls, path: Union[str, Path], write_fraction: float = 0.5,
                 name: Optional[str] = None) -> "LoadTrace":
        times = []
        loads = []
        with open(path, newline="") as fh:
            for row in csv.DictReader(fh):
                times.append(float(row["time_s"]))
                loads.append(float(row["load_bytes_per_s"]))
        if len(times) < 2:
            raise ValueError("trace file needs at least two samples")
        dt = times[1] - times[0]
        return cls(np.array(loads), dt, write_fraction,
                   name or Path(path).stem)

    def to_jsonl(self, path: Union[str, Path]) -> None:
        with open(path, "w") as fh:
            header = {"name": self.name, "dt": self.dt,
                      "write_fraction": self.write_fraction}
            fh.write(json.dumps(header) + "\n")
            for v in self.load:
                fh.write(json.dumps(float(v)) + "\n")

    @classmethod
    def from_jsonl(cls, path: Union[str, Path]) -> "LoadTrace":
        with open(path) as fh:
            header = json.loads(fh.readline())
            load = np.array([json.loads(line) for line in fh], dtype=float)
        return cls(load, header["dt"], header["write_fraction"],
                   header["name"])
