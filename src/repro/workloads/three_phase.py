"""The 3-phase workload (§V-A), after SpringFS.

The paper drives its testbed with Filebench configured as:

* **Phase 1** — sequentially write 2 GB to each of 7 files (14 GB
  total), as fast as the store allows;
* **Phase 2** — a much less IO-intensive mixed phase, rate-limited to
  20 MB/s, reading 4.2 GB and writing 8.4 GB in total;
* **Phase 3** — like phase 1 but with a 20 % write ratio.

Four servers are turned down at the end of phase 1 and turned back on
at the end of phase 2; Figures 3 and 7 plot the achieved throughput.

:func:`three_phase_workload` returns the phases as data; the
experiment driver turns each into a fluid client flow.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional

__all__ = ["Phase", "three_phase_workload"]

MB = 10 ** 6
GB = 10 ** 9


@dataclass(frozen=True)
class Phase:
    """One workload phase.

    Attributes
    ----------
    name:
        Label ("phase1", ...).
    total_bytes:
        Logical bytes to transfer; the phase ends when they are done.
    write_ratio:
        Fraction of the bytes that are writes (writes cost r disk
        copies, reads cost one).
    rate_cap:
        Offered-load ceiling in bytes/s (``None`` = as fast as the
        store allows — Filebench without a ``rate`` attribute).
    """

    name: str
    total_bytes: float
    write_ratio: float
    rate_cap: Optional[float] = None

    def __post_init__(self) -> None:
        if self.total_bytes <= 0:
            raise ValueError("phase must transfer some bytes")
        if not 0.0 <= self.write_ratio <= 1.0:
            raise ValueError("write_ratio must be in [0, 1]")
        if self.rate_cap is not None and self.rate_cap <= 0:
            raise ValueError("rate_cap must be positive")

    @property
    def write_bytes(self) -> float:
        return self.total_bytes * self.write_ratio

    @property
    def read_bytes(self) -> float:
        return self.total_bytes - self.write_bytes

    def min_duration(self) -> Optional[float]:
        """Duration implied by the rate cap, if any."""
        if self.rate_cap is None:
            return None
        return self.total_bytes / self.rate_cap


def three_phase_workload(scale: float = 1.0,
                         phase2_rate: float = 20 * MB) -> List[Phase]:
    """The §V-A workload.  *scale* shrinks the byte totals uniformly
    (the unit tests run at scale=0.05 to stay fast); *phase2_rate* is
    Filebench's ``rate`` attribute for the middle phase."""
    if scale <= 0:
        raise ValueError("scale must be positive")
    return [
        # 7 files x 2 GB, pure sequential write.
        Phase("phase1", total_bytes=14 * GB * scale, write_ratio=1.0),
        # 4.2 GB read + 8.4 GB written at 20 MB/s.
        Phase("phase2", total_bytes=12.6 * GB * scale,
              write_ratio=8.4 / 12.6, rate_cap=phase2_rate),
        # "similar to the first phase, except that the write ratio was
        # 20%".
        Phase("phase3", total_bytes=14 * GB * scale, write_ratio=0.2),
    ]
