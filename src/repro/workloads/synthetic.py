"""Synthetic load-profile primitives.

Composable generators for trace-like series: a diurnal baseline, a
burst process (exponential inter-arrival, Pareto magnitudes, geometric
durations — the standard heavy-tailed shape of analytics clusters),
and multiplicative noise.  :func:`synthesize_load` combines them and
calibrates to a target mean.

All randomness flows through a caller-provided seed; identical seeds
reproduce identical traces bit-for-bit.
"""

from __future__ import annotations

from typing import Optional

import numpy as np

__all__ = ["diurnal_profile", "burst_profile", "synthesize_load"]


def diurnal_profile(n_samples: int, dt: float,
                    period_s: float = 86400.0,
                    trough_ratio: float = 0.3,
                    phase: float = 0.0) -> np.ndarray:
    """A day/night multiplier in ``[trough_ratio, 1]``.

    ``trough_ratio`` is the overnight load relative to the daytime
    peak — the "periods with light load" elasticity exploits (§I).
    """
    if not 0.0 <= trough_ratio <= 1.0:
        raise ValueError("trough_ratio must be in [0, 1]")
    t = np.arange(n_samples) * dt
    wave = 0.5 * (1.0 + np.sin(2 * np.pi * t / period_s + phase))
    return trough_ratio + (1.0 - trough_ratio) * wave


def burst_profile(n_samples: int, dt: float, rng: np.random.Generator,
                  mean_interarrival_s: float = 3600.0,
                  mean_duration_s: float = 600.0,
                  magnitude_scale: float = 3.0,
                  magnitude_sigma: float = 0.6) -> np.ndarray:
    """An additive burst series (multiples of the baseline).

    Bursts arrive as a Poisson process, last exponentially-distributed
    times, and have lognormal heights (median *magnitude_scale*) — job
    submissions on an analytics cluster.  Lognormal rather than Pareto
    keeps the peak-to-mean ratio in the 5-20x band real cluster traces
    show; an unbounded tail would turn the whole calibrated trace into
    one spike.
    """
    if magnitude_scale <= 0 or magnitude_sigma < 0:
        raise ValueError("magnitude parameters must be positive")
    out = np.zeros(n_samples)
    t = 0.0
    horizon = n_samples * dt
    while True:
        t += rng.exponential(mean_interarrival_s)
        if t >= horizon:
            break
        height = rng.lognormal(mean=np.log(magnitude_scale),
                               sigma=magnitude_sigma)
        duration = max(dt, rng.exponential(mean_duration_s))
        i0 = int(t / dt)
        i1 = min(n_samples, i0 + max(1, int(round(duration / dt))))
        out[i0:i1] += height
    return out


def synthesize_load(
    duration_s: float,
    dt: float,
    mean_load: float,
    rng: Optional[np.random.Generator] = None,
    seed: Optional[int] = None,
    diurnal_trough: float = 0.3,
    burst_interarrival_s: float = 3600.0,
    burst_duration_s: float = 600.0,
    burst_magnitude: float = 3.0,
    noise_sigma: float = 0.25,
) -> np.ndarray:
    """A complete synthetic load series calibrated to *mean_load*.

    baseline(diurnal) × lognormal-noise + bursts, then scaled so the
    series mean equals *mean_load* exactly.
    """
    if rng is None:
        rng = np.random.default_rng(seed)
    n = max(2, int(round(duration_s / dt)))
    base = diurnal_profile(n, dt, trough_ratio=diurnal_trough,
                           phase=rng.uniform(0, 2 * np.pi))
    noise = rng.lognormal(mean=0.0, sigma=noise_sigma, size=n)
    bursts = burst_profile(
        n, dt, rng,
        mean_interarrival_s=burst_interarrival_s,
        mean_duration_s=burst_duration_s,
        magnitude_scale=burst_magnitude,
    )
    series = base * noise + bursts
    series *= mean_load / series.mean()
    return series
