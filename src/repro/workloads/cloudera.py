"""Synthetic stand-ins for the Cloudera customer traces (§V-B).

The paper analyses two of the five proprietary Cloudera enterprise
traces first characterised by Chen, Alspaugh & Katz (VLDB 2012).  The
raw traces are not public, so — per the reproduction's substitution
rule — we synthesise load series matched to everything the paper
publishes about them (Table I), plus the one qualitative property the
paper leans on: *"CC-a trace has significantly higher resizing
frequency"* than CC-b.

=====  =========  ========  ================
trace  machines   length    bytes processed
=====  =========  ========  ================
CC-a   <100       1 month   69 TB
CC-b   300        9 days    473 TB
=====  =========  ========  ================

CC-a is generated with short, frequent bursts (minutes-scale jobs on a
small cluster), CC-b with longer, heavier waves (sustained batch jobs
on a 300-node cluster).  Both are calibrated so the integral equals
the published bytes-processed exactly and the peak stays within the
published machine count at the default per-server throughput used by
:mod:`repro.policy`.
"""

from __future__ import annotations

import numpy as np

from repro.workloads.synthetic import synthesize_load
from repro.workloads.trace import LoadTrace, TraceSpec

__all__ = ["CC_A", "CC_B", "generate_cc_a", "generate_cc_b",
           "generate_trace"]

TB = 10 ** 12
DAY = 86400.0

CC_A = TraceSpec(name="CC-a", machines=100, length_seconds=30 * DAY,
                 bytes_processed=69 * TB)
CC_B = TraceSpec(name="CC-b", machines=300, length_seconds=9 * DAY,
                 bytes_processed=473 * TB)

#: Sample interval for the synthetic traces (the paper's figures have
#: minute-scale resolution).
TRACE_DT = 60.0


def generate_trace(spec: TraceSpec, seed: int,
                   burst_interarrival_s: float,
                   burst_duration_s: float,
                   burst_magnitude: float,
                   diurnal_trough: float,
                   noise_sigma: float,
                   write_fraction: float = 0.5,
                   dt: float = TRACE_DT) -> LoadTrace:
    """Synthesise a trace for *spec* with the given burst texture and
    pin its integral to the spec's bytes-processed."""
    rng = np.random.default_rng(seed)
    load = synthesize_load(
        duration_s=spec.length_seconds,
        dt=dt,
        mean_load=spec.mean_load,
        rng=rng,
        diurnal_trough=diurnal_trough,
        burst_interarrival_s=burst_interarrival_s,
        burst_duration_s=burst_duration_s,
        burst_magnitude=burst_magnitude,
        noise_sigma=noise_sigma,
    )
    trace = LoadTrace(load, dt, write_fraction, spec.name)
    return trace.scaled_to_total(spec.bytes_processed)


def generate_cc_a(seed: int = 1701) -> LoadTrace:
    """CC-a: one month, <100 machines, 69 TB — small cluster, *high
    resizing frequency* (short frequent bursts, §V-B)."""
    return generate_trace(
        CC_A, seed,
        burst_interarrival_s=15 * 60.0,   # a burst every ~15 minutes
        burst_duration_s=5 * 60.0,        # minutes-long jobs
        burst_magnitude=1.5,
        diurnal_trough=0.40,
        noise_sigma=0.35,
    )


def generate_cc_b(seed: int = 1702) -> LoadTrace:
    """CC-b: nine days, 300 machines, 473 TB — bigger cluster, heavier
    but less frequent waves with deep valleys between them."""
    return generate_trace(
        CC_B, seed,
        burst_interarrival_s=2.5 * 3600.0,  # a wave every few hours
        burst_duration_s=50 * 60.0,         # sustained batch jobs
        burst_magnitude=2.0,
        diurnal_trough=0.30,
        noise_sigma=0.25,
    )
