"""Stable 64-bit hash functions for ring positions and object keys.

Consistent hashing needs a hash that is (a) stable across processes —
Python's builtin ``hash`` is salted per process and therefore unusable —
(b) well distributed over the 64-bit space, and (c) cheap for bulk use.

Two families are provided:

``sha1``
    The first 8 bytes of SHA-1, the approach Sheepdog itself uses
    (``sd_hash`` is FNV in modern Sheepdog, but the original paper-era
    code hashed with SHA-1 object ids).  Cryptographic quality, slower.

``fnv1a``
    64-bit FNV-1a followed by a splitmix64 avalanche finalizer.  Plain
    FNV-1a mixes its *high* bits poorly on short keys (vnode labels like
    ``"5#17"``), which measurably skews ring arc shares; the finalizer
    restores full avalanche at negligible cost.  This is the default
    used throughout the reproduction.

Both accept ``str``, ``bytes`` and ``int`` keys; integers are encoded as
their decimal string so that object ids hash identically whether the
caller stores them as ints or strings.
"""

from __future__ import annotations

import hashlib
from typing import Iterable, Literal, Union

import numpy as np

__all__ = ["HashFunction", "hash64", "hash_key", "vnode_positions"]

HashFunction = Literal["fnv1a", "sha1"]

Key = Union[str, bytes, int]

_FNV_OFFSET = 0xCBF29CE484222325
_FNV_PRIME = 0x100000001B3
_MASK64 = 0xFFFFFFFFFFFFFFFF


def _to_bytes(key: Key) -> bytes:
    """Canonical byte encoding for a key.

    Integers map to their decimal representation so ``hash64(42)`` and
    ``hash64("42")`` agree — object ids cross the int/str boundary at
    several API layers and must land on the same ring position.
    """
    if isinstance(key, bytes):
        return key
    if isinstance(key, int):
        return b"%d" % key
    if isinstance(key, str):
        return key.encode("utf-8")
    raise TypeError(f"unhashable key type for ring hashing: {type(key)!r}")


def _splitmix64(h: int) -> int:
    """The splitmix64 finalizer: full 64-bit avalanche in three
    xor-shift-multiply rounds (Steele et al., the same mixer murmur3 and
    xxHash use as their tail)."""
    h = (h + 0x9E3779B97F4A7C15) & _MASK64
    h = ((h ^ (h >> 30)) * 0xBF58476D1CE4E5B9) & _MASK64
    h = ((h ^ (h >> 27)) * 0x94D049BB133111EB) & _MASK64
    return h ^ (h >> 31)


def _fnv1a64(data: bytes) -> int:
    h = _FNV_OFFSET
    for byte in data:
        h ^= byte
        h = (h * _FNV_PRIME) & _MASK64
    return _splitmix64(h)


def _sha1_64(data: bytes) -> int:
    return int.from_bytes(hashlib.sha1(data).digest()[:8], "big")


def hash64(key: Key, method: HashFunction = "fnv1a") -> int:
    """Hash *key* to a position in ``[0, 2**64)``.

    Parameters
    ----------
    key:
        Object id, server id, or any ring key.
    method:
        ``"fnv1a"`` (default) or ``"sha1"``.
    """
    data = _to_bytes(key)
    if method == "fnv1a":
        return _fnv1a64(data)
    if method == "sha1":
        return _sha1_64(data)
    raise ValueError(f"unknown hash method: {method!r}")


def hash_key(key: Key, method: HashFunction = "fnv1a") -> int:
    """Alias of :func:`hash64` kept for call-site readability: hashing a
    *data key* rather than a ring member."""
    return hash64(key, method)


def vnode_positions(
    server_id: Key,
    count: int,
    method: HashFunction = "fnv1a",
    start_index: int = 0,
) -> np.ndarray:
    """Ring positions for *count* virtual nodes of one server.

    Virtual node *j* of server *s* is placed at
    ``splitmix64(hash64(s) + j)`` — a counter-mode stream seeded by the
    server's own hash.  Like the conventional ``hash(f"{s}#{j}")``
    derivation it keeps positions stable when the vnode count changes
    (existing vnodes never move; new indices only append), which is what
    makes the equal-work layout's per-rank re-weighting cheap — but it
    vectorises: generating the ~10^4 vnodes of an equal-work ring is a
    handful of NumPy ops instead of 10^4 string hashes.

    Parameters
    ----------
    server_id:
        Physical server identifier.
    count:
        Number of virtual nodes to generate (may be 0).
    start_index:
        First vnode index; lets callers extend an existing set.

    Returns
    -------
    numpy.ndarray
        ``uint64`` array of length *count* (unsorted; duplicates across
        servers are possible but astronomically unlikely and handled by
        the ring's stable sort).
    """
    if count < 0:
        raise ValueError("vnode count must be >= 0")
    seed = np.uint64(hash64(server_id, method))
    idx = np.arange(start_index, start_index + count, dtype=np.uint64)
    return splitmix64_array(seed + idx)


def splitmix64_array(h: np.ndarray) -> np.ndarray:
    """Vectorised splitmix64 finalizer over a ``uint64`` array."""
    h = h.astype(np.uint64, copy=True)
    with np.errstate(over="ignore"):
        h += np.uint64(0x9E3779B97F4A7C15)
        h ^= h >> np.uint64(30)
        h *= np.uint64(0xBF58476D1CE4E5B9)
        h ^= h >> np.uint64(27)
        h *= np.uint64(0x94D049BB133111EB)
        h ^= h >> np.uint64(31)
    return h


def _bulk_fnv1a_uint64(vals: np.ndarray) -> np.ndarray:
    """Vectorised FNV-1a over the decimal encoding of non-negative
    integers — bit-identical to ``hash64(int(v))`` for every element.

    FNV-1a is a sequential byte fold, so it cannot be vectorised across
    byte *positions*; it can across *keys*: group values by decimal
    length and fold digit-by-digit over each group (at most 20 passes
    of whole-array NumPy ops instead of one Python loop per key).
    """
    out = np.empty(vals.shape, dtype=np.uint64)
    offset = np.uint64(_FNV_OFFSET)
    prime = np.uint64(_FNV_PRIME)
    with np.errstate(over="ignore"):
        lo = np.uint64(0)
        for ndigits in range(1, 21):
            hi = np.uint64(10 ** ndigits) if ndigits < 20 else None
            mask = (vals >= lo) if hi is None else (vals >= lo) & (vals < hi)
            if ndigits == 1:
                mask |= vals == 0
            lo = hi if hi is not None else lo
            if not mask.any():
                continue
            group = vals[mask]
            h = np.full(group.shape, offset, dtype=np.uint64)
            for j in range(ndigits - 1, -1, -1):
                digit = (group // np.uint64(10) ** np.uint64(j)) % np.uint64(10)
                h ^= digit + np.uint64(48)   # ord('0')
                h *= prime
            out[mask] = h
    return splitmix64_array(out)


def bulk_hash(keys: Iterable[Key], method: HashFunction = "fnv1a") -> np.ndarray:
    """Hash an iterable of keys into a ``uint64`` array (bulk helper for
    vectorised placement and distribution analysis).

    Non-negative integer inputs (``range``, integer ndarrays) take a
    fully vectorised path — the enabler for ``locate_bulk`` placing
    100k-object sweeps without a per-key Python hash; anything else
    falls back to the scalar :func:`hash64` loop.  Both paths produce
    identical values.
    """
    if method == "fnv1a":
        arr = None
        if isinstance(keys, np.ndarray) and keys.dtype.kind in "iu":
            arr = keys
        elif isinstance(keys, range):
            arr = np.arange(keys.start, keys.stop, keys.step, dtype=np.int64) \
                if len(keys) else np.empty(0, dtype=np.int64)
        if arr is not None:
            if arr.size == 0:
                return np.empty(0, dtype=np.uint64)
            if arr.dtype.kind == "u" or int(arr.min()) >= 0:
                return _bulk_fnv1a_uint64(arr.astype(np.uint64, copy=False))
            keys = (int(k) for k in arr)   # negatives: scalar fallback
    return np.fromiter(
        (hash64(k, method) for k in keys), dtype=np.uint64, count=-1
    )
