"""The hash ring: sorted virtual-node positions with successor walks.

The ring is the data structure from §II-A of the paper: server ids are
expanded into virtual nodes, each virtual node is hashed to a position
in ``[0, 2**64)``, and a key is served by the first virtual node(s)
found walking clockwise from the key's own hash.

Implementation notes
--------------------
* Positions live in a single sorted ``numpy.uint64`` array with a
  parallel ``intp`` array of owning-server indices, so a successor
  lookup is one ``np.searchsorted`` (O(log V)) and bulk lookups
  vectorise.
* Membership changes rebuild the arrays (O(V log V)).  Resizes are rare
  relative to placements, and — crucially for the elastic design —
  powering a server *off* does **not** remove it from the ring (§IV:
  "servers never leave the cluster when they are turned down").  Power
  state is a placement-time filter, not a ring mutation, so resizing the
  active set costs nothing here.
* Ties (two vnodes hashing to the same position) are broken
  deterministically by (position, server index, vnode index) so every
  process derives the identical ring.
"""

from __future__ import annotations

from time import perf_counter
from typing import Callable, Dict, Hashable, Iterator, List, Optional, Tuple

import numpy as np

from repro.hashring.hashing import HashFunction, hash64, vnode_positions
from repro.obs.runtime import OBS

__all__ = ["HashRing", "RingView"]

ServerId = Hashable


class HashRing:
    """A weighted consistent-hash ring over physical servers.

    Parameters
    ----------
    hash_method:
        Hash family for both vnode positions and keys (see
        :mod:`repro.hashring.hashing`).

    Examples
    --------
    >>> ring = HashRing()
    >>> ring.add_server("s1", weight=3)
    >>> ring.add_server("s2", weight=3)
    >>> ring.successor("some-object")  in {"s1", "s2"}
    True
    """

    def __init__(self, hash_method: HashFunction = "fnv1a") -> None:
        self.hash_method: HashFunction = hash_method
        self._weights: Dict[ServerId, int] = {}
        # Parallel arrays, rebuilt lazily on membership change.
        self._positions = np.empty(0, dtype=np.uint64)
        self._owners = np.empty(0, dtype=np.intp)
        self._vnode_idx = np.empty(0, dtype=np.intp)
        self._server_list: List[ServerId] = []
        self._dirty = False
        self._generation = 0

    # ------------------------------------------------------------------
    # membership
    # ------------------------------------------------------------------
    def add_server(self, server_id: ServerId, weight: int = 1) -> None:
        """Add *server_id* with *weight* virtual nodes.

        Raises if the server is already on the ring — use
        :meth:`set_weight` to re-weight.
        """
        if server_id in self._weights:
            raise ValueError(f"server already on ring: {server_id!r}")
        if weight < 1:
            raise ValueError("weight must be >= 1")
        self._weights[server_id] = int(weight)
        self._mark_dirty()

    def remove_server(self, server_id: ServerId) -> None:
        """Remove *server_id* and all its virtual nodes.

        Only used by the *original* consistent-hashing baseline: the
        elastic design keeps powered-down servers on the ring and skips
        them at placement time instead.
        """
        try:
            del self._weights[server_id]
        except KeyError:
            raise KeyError(f"server not on ring: {server_id!r}") from None
        self._mark_dirty()

    def set_weight(self, server_id: ServerId, weight: int) -> None:
        """Change the vnode count of an existing server."""
        if server_id not in self._weights:
            raise KeyError(f"server not on ring: {server_id!r}")
        if weight < 1:
            raise ValueError("weight must be >= 1")
        if self._weights[server_id] != weight:
            self._weights[server_id] = int(weight)
            self._mark_dirty()

    def _mark_dirty(self) -> None:
        """Membership changed: schedule an array rebuild and advance the
        generation so slot-table caches keyed on the old vnode layout
        (see :mod:`repro.core.kernel`) know to drop themselves."""
        self._dirty = True
        self._generation += 1

    @property
    def generation(self) -> int:
        """Monotonic membership-change counter.  Two calls returning the
        same value guarantee the vnode arrays (and therefore slot
        numbering) are identical — the invalidation key for memoized
        placement tables."""
        return self._generation

    def weight_of(self, server_id: ServerId) -> int:
        return self._weights[server_id]

    @property
    def servers(self) -> Tuple[ServerId, ...]:
        """Servers currently on the ring, in insertion order."""
        return tuple(self._weights)

    def __contains__(self, server_id: ServerId) -> bool:
        return server_id in self._weights

    def __len__(self) -> int:
        return len(self._weights)

    @property
    def num_vnodes(self) -> int:
        self._rebuild_if_dirty()
        return int(self._positions.size)

    # ------------------------------------------------------------------
    # ring construction
    # ------------------------------------------------------------------
    def _rebuild_if_dirty(self) -> None:
        if not self._dirty:
            return
        OBS.metrics.inc("ring.rebuilds")
        self._server_list = list(self._weights)
        chunks_pos = []
        chunks_owner = []
        chunks_vidx = []
        for idx, sid in enumerate(self._server_list):
            w = self._weights[sid]
            pos = vnode_positions(
                sid if isinstance(sid, (str, bytes, int)) else repr(sid),
                w,
                self.hash_method,
            )
            chunks_pos.append(pos)
            chunks_owner.append(np.full(w, idx, dtype=np.intp))
            chunks_vidx.append(np.arange(w, dtype=np.intp))
        if chunks_pos:
            positions = np.concatenate(chunks_pos)
            owners = np.concatenate(chunks_owner)
            vidx = np.concatenate(chunks_vidx)
            # Deterministic total order even under position collisions.
            order = np.lexsort((vidx, owners, positions))
            self._positions = positions[order]
            self._owners = owners[order]
            self._vnode_idx = vidx[order]
        else:
            self._positions = np.empty(0, dtype=np.uint64)
            self._owners = np.empty(0, dtype=np.intp)
            self._vnode_idx = np.empty(0, dtype=np.intp)
        self._dirty = False

    # ------------------------------------------------------------------
    # lookups
    # ------------------------------------------------------------------
    def key_position(self, key: Hashable) -> int:
        """Ring position of a data key."""
        return hash64(key if isinstance(key, (str, bytes, int)) else repr(key),
                      self.hash_method)

    def successor_slot(self, position: int) -> int:
        """Index (into the vnode arrays) of the first vnode at or after
        *position*, wrapping at the top of the ring."""
        self._rebuild_if_dirty()
        if self._positions.size == 0:
            raise LookupError("ring is empty")
        # ndarray-method searchsorted: skips the np.searchsorted
        # dispatch wrapper, which is measurable at per-IO call rates.
        # The np.uint64 wrap is load-bearing — a raw int needle would
        # upcast the uint64 comparison to float64 and lose precision.
        if OBS.hot:   # per-lookup profiling (--stats / perf runs)
            t0 = perf_counter()
            slot = int(self._positions.searchsorted(np.uint64(position),
                                                    side="left"))
            OBS.metrics.observe("perf.ring.successor", perf_counter() - t0)
            OBS.metrics.inc("ring.lookups")
            return slot % self._positions.size
        slot = int(self._positions.searchsorted(np.uint64(position),
                                                side="left"))
        return slot % self._positions.size

    def successor(self, key: Hashable) -> ServerId:
        """Physical server owning the first vnode clockwise of *key*."""
        slot = self.successor_slot(self.key_position(key))
        return self._server_list[self._owners[slot]]

    def walk_slots(self, position: int) -> Iterator[int]:
        """Iterate vnode slots clockwise from *position*, once around.

        The walk visits every vnode exactly once; callers dedupe to
        physical servers and apply their own skip rules (this is the
        primitive under both the original and the primary-server
        placement algorithms).
        """
        self._rebuild_if_dirty()
        n = self._positions.size
        if n == 0:
            return
        start = int(np.searchsorted(self._positions, np.uint64(position),
                                    side="left")) % n
        for i in range(n):
            yield (start + i) % n

    def walk_servers(self, position: int) -> Iterator[ServerId]:
        """Iterate *distinct* physical servers clockwise from *position*.

        Each server is yielded at its first vnode encounter, in ring
        order — the canonical successor list used by placement.
        """
        # Rebuild eagerly: this is a generator, so attribute reads must
        # not happen before walk_slots() has refreshed the arrays.
        self._rebuild_if_dirty()
        seen: set = set()
        owners = self._owners
        slist = self._server_list
        for slot in self.walk_slots(position):
            oid = owners[slot]
            if oid not in seen:
                seen.add(oid)
                yield slist[oid]

    def find(
        self,
        key: Hashable,
        r: int = 1,
        predicate: Optional[Callable[[ServerId], bool]] = None,
    ) -> List[ServerId]:
        """Original consistent-hashing placement: the first *r* distinct
        servers clockwise of *key* that satisfy *predicate*.

        Raises ``LookupError`` when fewer than *r* eligible servers
        exist — the caller decides whether that is fatal (reads) or
        triggers degraded placement (writes).
        """
        out: List[ServerId] = []
        for sid in self.walk_servers(self.key_position(key)):
            if predicate is None or predicate(sid):
                out.append(sid)
                if len(out) == r:
                    return out
        raise LookupError(
            f"only {len(out)} of {r} requested servers eligible for {key!r}"
        )

    # ------------------------------------------------------------------
    # bulk / analysis helpers
    # ------------------------------------------------------------------
    def bulk_successor_slots(self, positions: np.ndarray) -> np.ndarray:
        """Vectorised successor-*slot* lookup: the slot index of the
        first vnode at or after each position, wrapping at the top.

        This is the entry point of the memoized placement kernel
        (:mod:`repro.core.kernel`): a whole key array reduces to one
        ``searchsorted`` and the per-slot placement table does the rest.
        """
        self._rebuild_if_dirty()
        if self._positions.size == 0:
            raise LookupError("ring is empty")
        if OBS.hot:
            t0 = perf_counter()
            slots = np.searchsorted(self._positions, positions, side="left")
            slots %= self._positions.size
            OBS.metrics.observe("perf.ring.bulk_successor",
                                perf_counter() - t0)
            OBS.metrics.inc("ring.lookups", int(positions.size))
            OBS.metrics.inc("ring.bulk_keys", int(positions.size))
            return slots
        slots = np.searchsorted(self._positions, positions, side="left")
        slots %= self._positions.size
        return slots

    def bulk_successor(self, positions: np.ndarray) -> np.ndarray:
        """Vectorised first-successor lookup.

        Parameters
        ----------
        positions:
            ``uint64`` array of key positions.

        Returns
        -------
        numpy.ndarray
            ``intp`` array of server indices (into :attr:`servers`).
        """
        # Resolve slots first: it rebuilds a dirty ring, and the
        # rebuild rebinds ``_owners`` (reading the attribute before the
        # call would index the stale pre-rebuild array).
        slots = self.bulk_successor_slots(positions)
        return self._owners[slots]

    def arc_share(self) -> Dict[ServerId, float]:
        """Fraction of the ring owned by each server (sum of the arcs
        preceding its vnodes).  The expected share of single-copy keys —
        used by layout tests and Figure 5's distribution analysis."""
        self._rebuild_if_dirty()
        n = self._positions.size
        if n == 0:
            return {}
        pos = self._positions.astype(np.float64)
        # Arc before vnode i is owned by vnode i (clockwise successor).
        prev = np.roll(pos, 1)
        arcs = pos - prev
        arcs[0] = pos[0] + (2.0**64 - prev[0])
        total = arcs.sum()
        # One weighted bincount instead of a boolean-mask pass per
        # server (the old way was O(V·n)).
        sums = np.bincount(self._owners, weights=arcs,
                           minlength=len(self._server_list))
        return {sid: float(sums[idx] / total)
                for idx, sid in enumerate(self._server_list)}

    def view(self, predicate: Callable[[ServerId], bool]) -> "RingView":
        """A filtered view of the ring (see :class:`RingView`)."""
        return RingView(self, predicate)


class RingView:
    """A read-only view of a :class:`HashRing` restricted to servers that
    satisfy a predicate (e.g. "is powered on").

    Views are how the elastic design expresses *skip inactive* / *skip
    primary* / *skip secondary* without mutating the ring: the underlying
    vnode arrays are shared, only the walk filter differs.
    """

    def __init__(self, ring: HashRing,
                 predicate: Callable[[ServerId], bool]) -> None:
        self._ring = ring
        self._predicate = predicate

    def find(self, key: Hashable, r: int = 1) -> List[ServerId]:
        return self._ring.find(key, r, self._predicate)

    def walk_servers(self, position: int) -> Iterator[ServerId]:
        for sid in self._ring.walk_servers(position):
            if self._predicate(sid):
                yield sid

    def servers(self) -> List[ServerId]:
        return [s for s in self._ring.servers if self._predicate(s)]
