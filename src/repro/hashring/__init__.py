"""Consistent-hashing substrate: hash functions, the hash ring, and
virtual-node weight assignment.

This subpackage is the layer the paper's Sheepdog baseline sits on: a
classic consistent-hash ring (Karger et al., STOC '97) with virtual
nodes, extended so that every virtual node knows its physical server and
so that successor walks can filter servers by role (primary/secondary)
and power state — the hooks :mod:`repro.core.placement` needs.
"""

from repro.hashring.hashing import (
    hash64,
    hash_key,
    vnode_positions,
    HashFunction,
)
from repro.hashring.ring import HashRing, RingView
from repro.hashring.weights import (
    uniform_weights,
    validate_weights,
)

__all__ = [
    "hash64",
    "hash_key",
    "vnode_positions",
    "HashFunction",
    "HashRing",
    "RingView",
    "uniform_weights",
    "validate_weights",
]
