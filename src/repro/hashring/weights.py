"""Virtual-node weight assignment helpers.

The number of virtual nodes a server owns is its *weight*: the expected
fraction of single-copy keys it stores is (approximately) its weight
divided by the total.  The original consistent hashing uses uniform
weights; the equal-work layout in :mod:`repro.core.layout` uses rank-
dependent weights.  This module holds the shared plumbing and the
fairness diagnostics used to pick the vnode budget ``B``.
"""

from __future__ import annotations

from typing import Dict, Hashable, Sequence

import numpy as np

__all__ = ["uniform_weights", "validate_weights", "expected_shares",
           "share_error"]


def uniform_weights(server_ids: Sequence[Hashable],
                    vnodes_per_server: int = 100) -> Dict[Hashable, int]:
    """Equal vnode counts for every server — the original consistent
    hashing configuration (§II-A)."""
    if vnodes_per_server < 1:
        raise ValueError("vnodes_per_server must be >= 1")
    return {sid: vnodes_per_server for sid in server_ids}


def validate_weights(weights: Dict[Hashable, int]) -> None:
    """Raise ``ValueError`` on non-positive or non-integral weights."""
    for sid, w in weights.items():
        if not isinstance(w, (int, np.integer)):
            raise ValueError(f"weight of {sid!r} is not an integer: {w!r}")
        if w < 1:
            raise ValueError(f"weight of {sid!r} must be >= 1, got {w}")


def expected_shares(weights: Dict[Hashable, int]) -> Dict[Hashable, float]:
    """Ideal fraction of keys per server implied by the weights."""
    total = float(sum(weights.values()))
    if total <= 0:
        raise ValueError("total weight must be positive")
    return {sid: w / total for sid, w in weights.items()}


def share_error(observed: Dict[Hashable, float],
                expected: Dict[Hashable, float]) -> float:
    """Maximum relative deviation of observed from expected share.

    The paper (§III-C) requires ``B`` "large enough for data
    distribution fairness"; this metric quantifies *how* fair a given
    ``B`` is and drives the Ablation-B bench.
    """
    err = 0.0
    for sid, exp in expected.items():
        if exp <= 0:
            continue
        obs = observed.get(sid, 0.0)
        err = max(err, abs(obs - exp) / exp)
    return err
