"""Columnar (struct-of-arrays) backend for the fluid IO hot loop.

The scalar :func:`~repro.simulation.bandwidth.max_min_fair` walks
Python dicts once per filling round — O(F·R) interpreter work per
round, which is what caps simulated cluster size.  This module
compiles the same allocation problem into CSR-style NumPy columns
(``flow_idx`` / ``res_idx`` / ``coef`` entry arrays plus ``demand`` /
``remaining`` / per-resource live-load columns) and runs progressive
filling as array ops per round.

**Bit-for-bit identity with the scalar solver is a hard contract**,
not an aspiration: traces hash the rates, so the columnar path must
produce the identical IEEE-754 doubles.  Three observations make that
possible without giving up vectorisation:

* ``np.bincount(idx, weights=w)`` accumulates ``out[idx[i]] += w[i]``
  serially in input order — with entries kept in the scalar loop's
  flow-major order, each resource's initial live load is the *same
  chain of additions* the scalar dict loop performs.
* ``np.add.at(arr, idx, v)`` is the unbuffered scatter-add with the
  same in-order guarantee, and ``a + (-(c*s))`` is bitwise ``a - c*s``
  — so per-round capacity drains and freeze-time live-load retirement
  replay the scalar subtraction chains exactly.
* every remaining per-element op (rate advance, demand gaps, the
  ``1e-9`` clamp, the ``1e-12`` freeze tolerance) is embarrassingly
  element-wise, where NumPy float64 and Python floats share IEEE-754
  semantics.

The property suite (``tests/simulation/test_columnar.py``) pins the
contract over randomized instances: ``rates_columnar == rates_scalar``
with exact float equality, never ``approx``.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Dict, Hashable, List, Mapping, Sequence, Tuple

import numpy as np

from repro.obs.runtime import OBS

__all__ = ["CompiledProblem", "compile_problem", "solve_compiled",
           "max_min_fair_columnar"]

Resource = Hashable


@dataclass
class CompiledProblem:
    """One allocation problem as struct-of-arrays columns.

    Entries are stored flow-major (flow 0's coefficients in dict
    order, then flow 1's, ...), which is exactly the order the scalar
    solver's nested dict loops touch them in — the in-order
    accumulation guarantee above turns that into bit-identity.
    Coefficients on resources absent from *capacities* are dropped at
    compile time (the scalar path skips them with ``in`` checks).
    """

    #: Number of flows (rows) and known resources (columns).
    n_flows: int
    n_resources: int
    #: CSR-style entry columns, flow-major.
    flow_idx: np.ndarray       # int64, one per (flow, known-resource)
    res_idx: np.ndarray        # int64
    coef: np.ndarray           # float64
    #: Per-flow demand caps (``inf`` = elastic).
    demand: np.ndarray         # float64
    #: Per-resource capacities, in ``capacities`` iteration order.
    capacity: np.ndarray       # float64
    #: Resource keys by column index (for diagnostics).
    resources: Tuple[Resource, ...]

    @property
    def nnz(self) -> int:
        return int(self.flow_idx.size)


def compile_problem(flows: Sequence, capacities: Mapping[Resource, float]
                    ) -> CompiledProblem:
    """Compile ``FlowSpec``-likes (anything with ``coefficients`` and
    ``demand``) plus capacities into columns.

    Validation mirrors the scalar solver exactly — same error
    messages, raised at the same first-offender, so dispatching
    between the two backends never changes an exception.
    """
    n = len(flows)
    flow_idx: List[int] = []
    res_list: List[Resource] = []
    demand = np.empty(n, dtype=np.float64)
    for i, f in enumerate(flows):
        for res, coef in f.coefficients.items():
            if coef <= 0:
                raise ValueError(
                    f"coefficient must be > 0 (resource {res!r})")
        if f.demand < 0:
            raise ValueError("demand must be >= 0")
        demand[i] = f.demand

    resources = tuple(capacities)
    col = {res: j for j, res in enumerate(resources)}
    capacity = np.empty(len(resources), dtype=np.float64)
    for j, (res, cap) in enumerate(capacities.items()):
        if cap < 0:
            raise ValueError(f"capacity must be >= 0 (resource {res!r})")
        capacity[j] = float(cap)

    coef_list: List[float] = []
    res_idx: List[int] = []
    for i, f in enumerate(flows):
        for res, coef in f.coefficients.items():
            j = col.get(res)
            if j is None:
                continue
            flow_idx.append(i)
            res_idx.append(j)
            coef_list.append(coef)

    return CompiledProblem(
        n_flows=n,
        n_resources=len(resources),
        flow_idx=np.asarray(flow_idx, dtype=np.int64),
        res_idx=np.asarray(res_idx, dtype=np.int64),
        coef=np.asarray(coef_list, dtype=np.float64),
        demand=demand,
        capacity=capacity,
        resources=resources,
    )


def solve_compiled(problem: CompiledProblem) -> List[float]:
    """Progressive filling over the compiled columns.

    Every filling round is O(nnz) array work; the Python-level round
    loop runs at most ``n_flows + n_resources + 1`` times, exactly
    like the scalar solver's bounded ``for``.
    """
    n = problem.n_flows
    nres = problem.n_resources
    fidx, ridx, coef = problem.flow_idx, problem.res_idx, problem.coef
    demand = problem.demand

    rates = np.zeros(n, dtype=np.float64)
    frozen = np.zeros(n, dtype=bool)
    remaining = problem.capacity.copy()

    # Initial freezes: zero demand, or any coefficient on an exactly
    # zero-capacity resource.
    frozen |= demand == 0
    if problem.nnz:
        zero_cap_entry = remaining[ridx] == 0.0
        if zero_cap_entry.any():
            frozen |= np.bincount(fidx[zero_cap_entry],
                                  minlength=n).astype(bool)

    # Per-resource live load (serial additions in flow-major order,
    # matching the scalar init loop) and live-user counts, for the
    # exact-zero pin when a resource loses its last user.
    live_entry = ~frozen[fidx] if problem.nnz else np.zeros(0, dtype=bool)
    live_load = np.zeros(nres, dtype=np.float64)
    live_users = np.zeros(nres, dtype=np.int64)
    if problem.nnz:
        sel = live_entry
        if sel.any():
            live_load += np.bincount(ridx[sel], weights=coef[sel],
                                     minlength=nres)
            live_users += np.bincount(ridx[sel], minlength=nres)
        live_load[live_users == 0] = 0.0

    rounds = 0
    for _round in range(n + nres + 1):
        live = ~frozen
        if not live.any():
            break
        rounds += 1

        # Fastest-saturating resource under equal rate growth.
        step_res = None
        loaded = live_load > 0
        if loaded.any():
            step_res = float(np.min(remaining[loaded] / live_load[loaded]))

        # Closest demand cap among live flows.
        step_dem = None
        gaps = demand[live] - rates[live]
        finite = np.isfinite(gaps)
        if finite.any():
            step_dem = float(np.min(gaps[finite]))

        candidates = [s for s in (step_res, step_dem) if s is not None]
        if not candidates:
            raise ValueError(
                "unbounded allocation: an elastic flow touches no "
                "capacitated resource")
        step = max(0.0, min(candidates))

        # Advance all live flows and drain resources — the scatter-add
        # replays the scalar `remaining[res] -= coef * step` chains in
        # flow-major order.
        rates[live] += step
        if problem.nnz:
            le = live[fidx]
            if le.any():
                np.add.at(remaining, ridx[le], -(coef[le] * step))
        remaining[remaining < 1e-9] = 0.0

        # Freeze: demand reached (within tolerance) or any touched
        # resource saturated; retire frozen flows from the live loads.
        newly = live & (rates >= demand - 1e-12)
        if problem.nnz:
            sat_entry = remaining[ridx] == 0.0
            if sat_entry.any():
                newly |= live & np.bincount(fidx[sat_entry],
                                            minlength=n).astype(bool)
        if newly.any():
            frozen |= newly
            if problem.nnz:
                re = newly[fidx]
                if re.any():
                    np.add.at(live_load, ridx[re], -coef[re])
                    live_users -= np.bincount(ridx[re], minlength=nres)
            live_load[live_users == 0] = 0.0

    OBS.metrics.inc("bandwidth.solves")
    OBS.metrics.inc("bandwidth.filling_rounds", rounds)
    return rates.tolist()


def max_min_fair_columnar(flows: Sequence,
                          capacities: Mapping[Resource, float]
                          ) -> List[float]:
    """Drop-in columnar replacement for
    :func:`repro.simulation.bandwidth.max_min_fair` — same signature,
    same exceptions, bit-identical rates."""
    return solve_compiled(compile_problem(flows, capacities))
