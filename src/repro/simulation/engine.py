"""A minimal deterministic discrete-event simulation core.

Nothing storage-specific lives here: just a clock, a priority queue of
events, cancellation, and a periodic-callback helper.

Determinism contract: events execute in the total order
``(time, seq)`` where ``seq`` is a monotonically increasing sequence
number assigned at scheduling.  Two events scheduled for the same
instant therefore fire in insertion order — documented behaviour, not
a heap accident — so thousands of clients scheduling same-timestamp
arrivals and completions replay bit-for-bit regardless of heap
internals.  Scheduling times must be finite: a NaN compares false
against everything, which would silently corrupt the heap's ordering,
so non-finite times are rejected at :meth:`Simulator.schedule_at`.
"""

from __future__ import annotations

import heapq
import itertools
import math
from typing import Any, Callable, List, Optional

from repro.obs.runtime import OBS

__all__ = ["Event", "Simulator"]


class Event:
    """A scheduled callback.  Returned by :meth:`Simulator.schedule`
    so callers can :meth:`cancel` it."""

    __slots__ = ("time", "seq", "fn", "args", "cancelled", "_sim")

    def __init__(self, time: float, seq: int,
                 fn: Callable[..., Any], args: tuple,
                 sim: "Optional[Simulator]" = None) -> None:
        self.time = time
        self.seq = seq
        self.fn = fn
        self.args = args
        self.cancelled = False
        self._sim = sim

    def cancel(self) -> None:
        """Prevent the event from firing (O(1); the heap entry is
        skipped lazily when popped).  Idempotent — a double cancel
        must not decrement the owning simulator's live count twice."""
        if self.cancelled:
            return
        self.cancelled = True
        if self._sim is not None:
            self._sim._live -= 1

    def __lt__(self, other: "Event") -> bool:
        return (self.time, self.seq) < (other.time, other.seq)


class Simulator:
    """The event loop.

    Examples
    --------
    >>> sim = Simulator()
    >>> hits = []
    >>> _ = sim.schedule(5.0, hits.append, "a")
    >>> _ = sim.schedule(2.0, hits.append, "b")
    >>> sim.run()
    >>> hits
    ['b', 'a']
    >>> sim.now
    5.0
    """

    def __init__(self, start_time: float = 0.0) -> None:
        self.now = float(start_time)
        self._heap: List[Event] = []
        self._seq = itertools.count()
        #: Live (scheduled, not yet fired or cancelled) event count —
        #: kept exact on schedule/cancel/pop so :attr:`pending` is O(1)
        #: instead of an O(heap) scan per call (it is consulted on
        #: every ``engine.clock`` emit).
        self._live = 0
        self._events_counter = OBS.metrics.counter("engine.events")
        self._sched_counter = OBS.metrics.counter("engine.scheduled")

    # ------------------------------------------------------------------
    def schedule(self, delay: float, fn: Callable[..., Any],
                 *args: Any) -> Event:
        """Run ``fn(*args)`` *delay* seconds from now."""
        if delay < 0:
            raise ValueError("cannot schedule into the past")
        return self.schedule_at(self.now + delay, fn, *args)

    def schedule_at(self, t: float, fn: Callable[..., Any],
                    *args: Any) -> Event:
        """Run ``fn(*args)`` at absolute time *t* (>= now, finite).

        Same-instant events fire in scheduling order — the documented
        ``(time, seq)`` total order of the module docstring."""
        if not math.isfinite(t):
            # NaN would pass the `< now` guard (NaN comparisons are
            # all false) and then violate the heap's strict weak
            # ordering — corrupting event order nondeterministically.
            raise ValueError(f"cannot schedule at non-finite time {t!r}")
        if t < self.now:
            raise ValueError(f"cannot schedule at {t} < now={self.now}")
        ev = Event(t, next(self._seq), fn, args, sim=self)
        heapq.heappush(self._heap, ev)
        self._live += 1
        self._sched_counter.inc()
        return ev

    def every(self, interval: float, fn: Callable[..., Any],
              *args: Any, until: Optional[float] = None) -> Event:
        """Periodic callback every *interval* seconds, first firing one
        interval from now, stopping after *until* (inclusive).  Returns
        the first event; cancelling a fired chain requires cancelling
        the event returned to *fn* — for simplicity, periodic chains
        stop via *until* or by the callback raising ``StopIteration``.
        """
        if interval <= 0:
            raise ValueError("interval must be positive")

        def tick() -> None:
            try:
                fn(*args)
            except StopIteration:
                return
            nxt = self.now + interval
            if until is None or nxt <= until:
                self.schedule_at(nxt, tick)

        return self.schedule(interval, tick)

    # ------------------------------------------------------------------
    @property
    def pending(self) -> int:
        """Live-event count, maintained incrementally (O(1))."""
        return self._live

    def clear(self) -> int:
        """Cancel every pending event (teardown / preemption of a whole
        schedule, e.g. abandoning an armed fault plan).  Returns how
        many live events were cancelled."""
        cancelled = 0
        for ev in self._heap:
            if not ev.cancelled:
                ev.cancel()
                cancelled += 1
        return cancelled

    def peek_time(self) -> Optional[float]:
        """Time of the next live event, or None."""
        while self._heap and self._heap[0].cancelled:
            heapq.heappop(self._heap)
        return self._heap[0].time if self._heap else None

    def step(self) -> bool:
        """Execute the next event; returns False when the queue is
        empty."""
        while self._heap:
            ev = heapq.heappop(self._heap)
            if ev.cancelled:
                OBS.metrics.inc("engine.cancelled")
                continue
            self._live -= 1
            ev._sim = None      # a late cancel() must not decrement again
            self.now = ev.time
            self._events_counter.inc()
            bus = OBS.bus
            if bus.active:
                bus.clock = ev.time
                bus.emit("engine.event", t=ev.time, seq=ev.seq,
                         fn=getattr(ev.fn, "__qualname__", repr(ev.fn)))
            prof = OBS.profiler
            if prof is not None:
                prof.advance_sim(ev.time)
                prof.push("engine:" + getattr(
                    ev.fn, "__qualname__", repr(ev.fn)))
                try:
                    ev.fn(*ev.args)
                finally:
                    prof.pop()
            else:
                ev.fn(*ev.args)
            return True
        return False

    def run(self) -> None:
        """Drain the event queue."""
        while self.step():
            pass

    def run_until(self, t: float) -> None:
        """Execute events up to and including time *t*, then set the
        clock to *t*."""
        if t < self.now:
            raise ValueError(f"cannot run backwards to {t}")
        while True:
            nxt = self.peek_time()
            if nxt is None or nxt > t:
                break
            self.step()
        self.now = t
        bus = OBS.bus
        if bus.active:
            bus.clock = t
            bus.emit("engine.clock", t=t, pending=self.pending)
        prof = OBS.profiler
        if prof is not None:
            prof.advance_sim(t)
