"""The per-tick IO model: flows vs. per-server disk capacity.

:class:`IOModel` advances a :class:`~repro.simulation.flows.FlowSet`
against time-varying capacities (servers power on and off) and records
the achieved throughput per flow name — the raw series behind the
paper's throughput-vs-time figures.

It also provides the bridge between *placement* and *fluid load*:
:func:`replica_load_fractions` probes a placement function with a set
of object ids and returns each server's share of replica traffic,
which becomes the client flow's per-server coefficients.
"""

from __future__ import annotations

import math
import os
from typing import (
    Callable,
    Dict,
    Hashable,
    Iterable,
    List,
    Mapping,
    Optional,
    Tuple,
)

import numpy as np

from repro.obs.runtime import OBS
from repro.simulation.flows import FlowSet

__all__ = ["IOModel", "batching_enabled", "replica_load_fractions",
           "replica_load_fractions_from_matrix", "client_coefficients"]

CapacityFn = Callable[[], Mapping[Hashable, float]]

#: Upper bound on ticks folded into one vectorised batch — bounds the
#: (flows × horizon) progress matrix a batch materialises.
_BATCH_MAX_TICKS = 16384


def batching_enabled() -> bool:
    """Whether allocation reuse / horizon batching is on, per the
    ``REPRO_BATCH_TICKS`` env switch (default on; ``0`` / ``off`` /
    ``false`` / ``no`` restore the solve-every-tick behaviour).  Read
    per call so tests can flip it without re-importing.

    Batching never changes results — same-seed runs produce
    byte-identical traces and samples with it on or off (pinned by
    ``tests/simulation/test_batching.py``); the switch exists for A/B
    timing and as an escape hatch.
    """
    val = os.environ.get("REPRO_BATCH_TICKS", "1").strip().lower()
    return val not in ("0", "off", "false", "no")


def replica_load_fractions(
    locate: Callable[[int], Iterable[int]],
    probe_oids: Iterable[int],
) -> Dict[int, float]:
    """Fraction of replica traffic each server receives, estimated by
    placing *probe_oids* through *locate*.

    The fractions sum to 1 over all servers; a write stream at logical
    rate X with replication r generates ``r * X * fraction[s]`` load on
    server s.
    """
    counts: Dict[int, int] = {}
    total = 0
    for oid in probe_oids:
        for s in locate(oid):
            counts[s] = counts.get(s, 0) + 1
            total += 1
    if total == 0:
        raise ValueError("probe produced no placements")
    return {s: c / total for s, c in counts.items()}


def replica_load_fractions_from_matrix(servers: np.ndarray
                                       ) -> Dict[int, float]:
    """:func:`replica_load_fractions` from a bulk placement's ``(N, r)``
    server matrix (``BulkPlacement.servers``) — the drivers probe
    placement via ``locate_bulk`` and hand the matrix here.

    Produces the identical dict (values *and* first-encounter key
    order) as the scalar probe loop; unplaceable rows (``-1``) are
    ignored.
    """
    flat = np.asarray(servers).ravel()
    valid = flat[flat >= 0]
    total = int(valid.size)
    if total == 0:
        raise ValueError("probe produced no placements")
    counts = np.bincount(valid)
    # First-encounter key order, as the scalar probe loop produces:
    # unique server ids sorted by their first index in the (filtered,
    # order-preserving) valid array.
    uniq, first = np.unique(valid, return_index=True)
    order = uniq[np.argsort(first, kind="stable")]
    return {int(s): int(counts[s]) / total for s in order}


def client_coefficients(
    fractions: Mapping[int, float],
    replicas: int,
    write_ratio: float = 1.0,
) -> Dict[int, float]:
    """Per-server disk load per unit of *logical* client throughput.

    A written byte costs ``replicas`` disk-bytes (every copy is
    written); a read byte costs 1 (one replica serves it).  Both spread
    over the servers by *fractions*.
    """
    if not 0.0 <= write_ratio <= 1.0:
        raise ValueError("write_ratio must be in [0, 1]")
    amplification = write_ratio * replicas + (1.0 - write_ratio)
    return {s: amplification * frac
            for s, frac in fractions.items() if frac > 0.0}


class IOModel:
    """Tick-driven fluid IO over a storage cluster.

    Parameters
    ----------
    capacity_fn:
        Returns the *current* ``{server: disk bytes/s}`` for powered-on
        servers; consulted every tick so resizes take effect
        immediately.
    dt:
        Tick length in seconds.
    capacity_token:
        Optional zero-arg callable returning a cheap generation token
        that changes whenever ``capacity_fn``'s result would (e.g. the
        cluster's placement version, or ``(version, injector
        generation)`` under faults).  With a token, unchanged ticks
        skip the capacity-dict rebuild entirely; without one the model
        falls back to rebuilding and comparing the dict — still far
        cheaper than a solve.  An inaccurate token that *over*-reports
        change only costs speed; one that under-reports change breaks
        correctness, so only wire tokens that cover every capacity
        input.
    """

    def __init__(self, capacity_fn: CapacityFn, dt: float = 1.0,
                 capacity_token: Optional[Callable[[], object]] = None
                 ) -> None:
        if dt <= 0:
            raise ValueError("dt must be positive")
        self.capacity_fn = capacity_fn
        self.dt = dt
        self.capacity_token = capacity_token
        self.flows = FlowSet()
        #: (time, {flow name: achieved bytes/s}) per tick.
        self.samples: List[Tuple[float, Dict[str, float]]] = []
        #: Capacities (and token) observed at the last full solve —
        #: the reuse paths compare against these.
        self._caps: Optional[Dict[Hashable, float]] = None
        self._caps_token: object = None

    # ------------------------------------------------------------------
    def _caps_unchanged(self) -> Tuple[bool, Optional[Dict[Hashable, float]]]:
        """(capacities provably unchanged since the last solve, the
        freshly built dict if this check had to build one)."""
        if self._caps is None:
            return False, None
        if self.capacity_token is not None:
            return self.capacity_token() == self._caps_token, None
        caps = dict(self.capacity_fn())
        # Ordered compare: the solvers' outputs are insensitive to
        # capacity-dict ordering in value, but the solve payload's
        # tie-breaks are not — demand the exact same dict.
        return (list(caps.items()) == list(self._caps.items())), caps

    def step(self, now: float) -> Dict[str, float]:
        """Advance one tick ending at *now* and record the sample."""
        bus = OBS.bus
        bus.clock = now
        prof = OBS.profiler
        if prof is not None:
            prof.advance_sim(now)
            prof.push("io.step")
        try:
            achieved: Optional[Dict[str, float]] = None
            caps: Optional[Dict[Hashable, float]] = None
            if batching_enabled():
                unchanged, caps = self._caps_unchanged()
                if unchanged:
                    if len(self.flows) == 0:
                        achieved = {}
                    else:
                        achieved = self.flows.advance_cached(self.dt)
            if achieved is None:
                if caps is None:
                    caps = dict(self.capacity_fn())
                self._caps = caps
                if self.capacity_token is not None:
                    self._caps_token = self.capacity_token()
                achieved = self.flows.advance(self.dt, caps)
        finally:
            if prof is not None:
                prof.pop()
        self.samples.append((now, achieved))
        OBS.metrics.inc("engine.ticks")
        OBS.metrics.gauge("io.live_flows").set(len(self.flows))
        if bus.active:
            bus.emit("engine.tick", t=now, dt=self.dt,
                     flows=len(self.flows), servers=len(self._caps))
        return achieved

    def run(self, duration: float, start: float = 0.0,
            on_tick: Callable[[float], None] | None = None) -> None:
        """Convenience loop: tick from *start* for *duration* seconds.
        *on_tick(t)* fires before each tick — drivers mutate flows and
        memberships there.

        Without an *on_tick* (nothing can change between ticks), runs
        of unchanged ticks are folded into vectorised batches — see
        :meth:`_run_batch`."""
        t = start
        end = start + duration
        batchable = on_tick is None
        while t < end - 1e-9:
            if batchable:
                nt = self._run_batch(t, end)
                if nt is not None:
                    t = nt
                    continue
            t = min(t + self.dt, end)
            if on_tick is not None:
                on_tick(t)
            self.step(t)

    def _run_batch(self, t: float, end: float) -> Optional[float]:
        """Advance as many provably-unchanged ticks as possible in one
        vectorised step; returns the new clock, or ``None`` to fall
        back to per-tick stepping.

        The horizon is the longest run of ticks over which the cached
        allocation stays exactly valid: membership generation, flow
        coefficients/caps, and capacities unchanged, every per-tick
        demand bit-equal to the solve's, and no finite flow completing
        before the batch's *final* tick (a completion is handled at
        the last tick, exactly where per-tick stepping would).
        Progress and tick labels are computed with ``np.cumsum`` —
        serial addition chains, so every per-flow ``progressed`` and
        every sample timestamp is bit-identical to the per-tick loop.

        Requires an inactive event bus and no profiler: both demand
        per-tick emission, which per-tick stepping provides (the
        cached :meth:`~repro.simulation.flows.FlowSet.advance_cached`
        path still skips the solver there).
        """
        if not batching_enabled():
            return None
        bus = OBS.bus
        if bus.active or OBS.profiler is not None or OBS.hot:
            return None
        a = self.flows._alloc
        if a is None:
            return None
        dt = self.dt
        if a["generation"] != self.flows.generation or a["dt"] != dt:
            return None
        unchanged, _ = self._caps_unchanged()
        if not unchanged:
            return None
        live = a["live"]
        # Coefficients compare by ordered value, not identity: an
        # in-place mutation (serving throttle, coefficient refresh)
        # must cut the batch horizon exactly like a replacement dict.
        for f, items, cap in zip(live, a["coeff_items"], a["caps"]):
            if f.rate_cap != cap or list(f.coefficients.items()) != items:
                return None

        # Tick labels by the loop's own recurrence t = min(t+dt, end):
        # the clamp can only bind on the final executed tick, so the
        # plain cumsum chain is the exact serial sequence.
        n = min(_BATCH_MAX_TICKS,
                max(1, int(math.ceil((end - t) / dt)) + 1))
        chain = np.empty(n + 1, dtype=np.float64)
        chain[0] = t
        chain[1:] = dt
        labels = np.minimum(np.cumsum(chain), end)
        # Tick j executes iff the clock *before* it is < end - 1e-9.
        h = int(np.count_nonzero(labels[:-1] < end - 1e-9))
        if h == 0:
            return None

        # Per-tick progress chains: ps[i, j] = flow i's progressed
        # after j ticks, bit-identical to j serial `p += rate*dt`s.
        inc = np.asarray(a["incs"], dtype=np.float64)
        mat = np.empty((len(live), h + 1), dtype=np.float64)
        mat[:, 0] = [f.progressed for f in live]
        mat[:, 1:] = inc[:, None]
        ps = np.cumsum(mat, axis=1)

        total = np.array([math.inf if f.total_bytes is None
                          else f.total_bytes for f in live])
        rate_cap = np.asarray(a["caps"], dtype=np.float64)
        dem = np.asarray(a["demands"], dtype=np.float64)
        # Demand each tick would compute (from the pre-tick progress)
        # must equal the solve's; the first mismatching tick needs a
        # fresh solve and bounds the horizon.
        d_mat = np.minimum(rate_cap[:, None],
                           np.maximum(0.0, total[:, None] - ps[:, :h]) / dt)
        valid = np.all(d_mat == dem[:, None], axis=0)
        bad = np.flatnonzero(~valid)
        if bad.size:
            h = int(bad[0])     # ticks 1..bad[0] are valid
        # A completion ends the batch at that tick.
        done_tick = total[:, None] - ps[:, 1:h + 1] <= 1e-6
        done_any = np.flatnonzero(np.any(done_tick, axis=0))
        if done_any.size:
            h = int(done_any[0]) + 1
        if h < 2:
            return None         # per-tick stepping handles it as fast

        rates = a["rates"]
        for i, f in enumerate(live):
            f.last_rate = rates[i]
            f.progressed = float(ps[i, h])
        achieved = a["achieved"]
        for j in range(1, h + 1):
            self.samples.append((float(labels[j]), dict(achieved)))
        OBS.metrics.inc("engine.ticks", h)
        OBS.metrics.inc("bandwidth.reused", h)
        now = float(labels[h])
        bus.clock = now
        finished = [f for f in live if f.done]
        if finished:
            self.flows._finish(finished, bus)
        OBS.metrics.gauge("io.live_flows").set(len(self.flows))
        return now

    # ------------------------------------------------------------------
    def series(self, name: str) -> Tuple[List[float], List[float]]:
        """(times, bytes/s) achieved by flows named *name* (0 where the
        flow was absent)."""
        times = [t for t, _ in self.samples]
        values = [s.get(name, 0.0) for _, s in self.samples]
        return times, values

    def total_moved(self, name: str) -> float:
        """Total bytes achieved by *name* across the run."""
        return sum(s.get(name, 0.0) for _, s in self.samples) * self.dt
