"""The per-tick IO model: flows vs. per-server disk capacity.

:class:`IOModel` advances a :class:`~repro.simulation.flows.FlowSet`
against time-varying capacities (servers power on and off) and records
the achieved throughput per flow name — the raw series behind the
paper's throughput-vs-time figures.

It also provides the bridge between *placement* and *fluid load*:
:func:`replica_load_fractions` probes a placement function with a set
of object ids and returns each server's share of replica traffic,
which becomes the client flow's per-server coefficients.
"""

from __future__ import annotations

from typing import Callable, Dict, Hashable, Iterable, List, Mapping, Tuple

import numpy as np

from repro.obs.runtime import OBS
from repro.simulation.flows import FlowSet

__all__ = ["IOModel", "replica_load_fractions",
           "replica_load_fractions_from_matrix", "client_coefficients"]

CapacityFn = Callable[[], Mapping[Hashable, float]]


def replica_load_fractions(
    locate: Callable[[int], Iterable[int]],
    probe_oids: Iterable[int],
) -> Dict[int, float]:
    """Fraction of replica traffic each server receives, estimated by
    placing *probe_oids* through *locate*.

    The fractions sum to 1 over all servers; a write stream at logical
    rate X with replication r generates ``r * X * fraction[s]`` load on
    server s.
    """
    counts: Dict[int, int] = {}
    total = 0
    for oid in probe_oids:
        for s in locate(oid):
            counts[s] = counts.get(s, 0) + 1
            total += 1
    if total == 0:
        raise ValueError("probe produced no placements")
    return {s: c / total for s, c in counts.items()}


def replica_load_fractions_from_matrix(servers: np.ndarray
                                       ) -> Dict[int, float]:
    """:func:`replica_load_fractions` from a bulk placement's ``(N, r)``
    server matrix (``BulkPlacement.servers``) — the drivers probe
    placement via ``locate_bulk`` and hand the matrix here.

    Produces the identical dict (values *and* first-encounter key
    order) as the scalar probe loop; unplaceable rows (``-1``) are
    ignored.
    """
    flat = np.asarray(servers).ravel()
    valid = flat[flat >= 0]
    total = int(valid.size)
    if total == 0:
        raise ValueError("probe produced no placements")
    counts = np.bincount(valid)
    order: List[int] = []
    seen: set = set()
    for s in flat.tolist():   # first-encounter order, as the scalar loop
        if s >= 0 and s not in seen:
            seen.add(s)
            order.append(s)
    return {s: int(counts[s]) / total for s in order}


def client_coefficients(
    fractions: Mapping[int, float],
    replicas: int,
    write_ratio: float = 1.0,
) -> Dict[int, float]:
    """Per-server disk load per unit of *logical* client throughput.

    A written byte costs ``replicas`` disk-bytes (every copy is
    written); a read byte costs 1 (one replica serves it).  Both spread
    over the servers by *fractions*.
    """
    if not 0.0 <= write_ratio <= 1.0:
        raise ValueError("write_ratio must be in [0, 1]")
    amplification = write_ratio * replicas + (1.0 - write_ratio)
    return {s: amplification * frac
            for s, frac in fractions.items() if frac > 0.0}


class IOModel:
    """Tick-driven fluid IO over a storage cluster.

    Parameters
    ----------
    capacity_fn:
        Returns the *current* ``{server: disk bytes/s}`` for powered-on
        servers; consulted every tick so resizes take effect
        immediately.
    dt:
        Tick length in seconds.
    """

    def __init__(self, capacity_fn: CapacityFn, dt: float = 1.0) -> None:
        if dt <= 0:
            raise ValueError("dt must be positive")
        self.capacity_fn = capacity_fn
        self.dt = dt
        self.flows = FlowSet()
        #: (time, {flow name: achieved bytes/s}) per tick.
        self.samples: List[Tuple[float, Dict[str, float]]] = []

    # ------------------------------------------------------------------
    def step(self, now: float) -> Dict[str, float]:
        """Advance one tick ending at *now* and record the sample."""
        bus = OBS.bus
        bus.clock = now
        prof = OBS.profiler
        if prof is not None:
            prof.advance_sim(now)
            prof.push("io.step")
        try:
            capacities = dict(self.capacity_fn())
            achieved = self.flows.advance(self.dt, capacities)
        finally:
            if prof is not None:
                prof.pop()
        self.samples.append((now, achieved))
        OBS.metrics.inc("engine.ticks")
        OBS.metrics.gauge("io.live_flows").set(len(self.flows))
        if bus.active:
            bus.emit("engine.tick", t=now, dt=self.dt,
                     flows=len(self.flows), servers=len(capacities))
        return achieved

    def run(self, duration: float, start: float = 0.0,
            on_tick: Callable[[float], None] | None = None) -> None:
        """Convenience loop: tick from *start* for *duration* seconds.
        *on_tick(t)* fires before each tick — drivers mutate flows and
        memberships there."""
        t = start
        end = start + duration
        while t < end - 1e-9:
            t = min(t + self.dt, end)
            if on_tick is not None:
                on_tick(t)
            self.step(t)

    # ------------------------------------------------------------------
    def series(self, name: str) -> Tuple[List[float], List[float]]:
        """(times, bytes/s) achieved by flows named *name* (0 where the
        flow was absent)."""
        times = [t for t, _ in self.samples]
        values = [s.get(name, 0.0) for _, s in self.samples]
        return times, values

    def total_moved(self, name: str) -> float:
        """Total bytes achieved by *name* across the run."""
        return sum(s.get(name, 0.0) for _, s in self.samples) * self.dt
