"""Max-min fair bandwidth allocation with per-resource coefficients.

The fluid IO model reduces every tick to one question: given flows
(foreground client IO, recovery, re-integration) that each load a set
of server disks, and per-disk capacity, what rate does each flow get?

We answer with *weighted progressive filling*, the classic max-min
construction: every unfrozen flow's rate grows at the same pace until
either (a) a flow reaches its demand cap — it freezes at its cap — or
(b) a resource saturates — every flow using that resource freezes at
its current rate.  Repeat until all flows are frozen.  The result is
the unique max-min fair allocation, the standard idealisation of how
fair disk/network schedulers share bandwidth between concurrent
streams.

A *coefficient* generalises "uses the resource": a flow with rate x and
coefficient a on disk s consumes ``a*x`` of that disk.  This is how
replication is expressed — a client write stream at logical rate x with
r=2 puts coefficient ~2·(share of server s) on each server — and how a
migration flow loads both its source (read) and destination (write).
"""

from __future__ import annotations

import math
import os
from dataclasses import dataclass
from typing import Dict, Hashable, List, Mapping, Optional, Sequence

from repro.obs.runtime import OBS

__all__ = ["FlowSpec", "max_min_fair", "max_min_fair_scalar",
           "apply_capacity_factors", "solver_mode"]

Resource = Hashable

#: ``REPRO_SOLVER`` values: ``scalar`` forces the reference dict-loop
#: solver, ``columnar`` forces the struct-of-arrays backend
#: (:mod:`repro.simulation.columnar`), ``auto`` (default) picks
#: columnar once the problem is large enough to amortise array setup.
#: Both backends return bit-identical rates, so the switch only moves
#: wall-clock, never results.
_SOLVER_MODES = ("auto", "scalar", "columnar")

#: ``auto`` cutover: use the columnar backend when flows × resources
#: reaches this many cells.  Below it the scalar dict loop wins on
#: constant factors (array allocation costs more than the whole
#: solve); above it the per-round O(F·R) interpreter work dominates.
_AUTO_CUTOVER_CELLS = 2048


def solver_mode() -> str:
    """The active solver backend per ``REPRO_SOLVER`` (read per call so
    tests and drivers can flip it without re-importing)."""
    mode = os.environ.get("REPRO_SOLVER", "auto").strip().lower() or "auto"
    if mode not in _SOLVER_MODES:
        raise ValueError(
            f"REPRO_SOLVER must be one of {_SOLVER_MODES}, got {mode!r}")
    return mode


def apply_capacity_factors(
    capacities: Mapping[Resource, float],
    factors: Mapping[Resource, float],
) -> Dict[Resource, float]:
    """Scale per-resource capacities by degradation factors — the hook
    transient disk-bandwidth faults use to slow a server down for a
    window.  A missing factor means 1.0 (healthy); factors clamp at 0
    (a fully stalled disk freezes its flows, which ``max_min_fair``
    already handles)."""
    if not factors:
        return dict(capacities)
    return {res: cap * max(0.0, factors.get(res, 1.0))
            for res, cap in capacities.items()}


@dataclass
class FlowSpec:
    """One flow's view of the allocation problem.

    Attributes
    ----------
    coefficients:
        ``{resource: load-per-unit-rate}``; all coefficients > 0.
    demand:
        Rate cap (``inf`` = elastic, takes whatever is fair).
    """

    coefficients: Mapping[Resource, float]
    demand: float = math.inf


def max_min_fair(flows: Sequence[FlowSpec],
                 capacities: Mapping[Resource, float]) -> List[float]:
    """Allocate rates to *flows* under *capacities* by progressive
    filling.

    Returns the rate per flow, in input order.  Flows whose every
    coefficient touches only unknown resources are treated as
    unconstrained (rate = demand); a zero-capacity resource freezes its
    flows at 0.

    Dispatches between the scalar reference implementation
    (:func:`max_min_fair_scalar`) and the vectorised columnar backend
    (:func:`repro.simulation.columnar.max_min_fair_columnar`) per
    ``REPRO_SOLVER`` — see :func:`solver_mode`.  The two are
    bit-identical, property-tested in
    ``tests/simulation/test_columnar.py``.
    """
    mode = solver_mode()
    if mode == "columnar" or (
            mode == "auto"
            and len(flows) * len(capacities) >= _AUTO_CUTOVER_CELLS):
        from repro.simulation.columnar import max_min_fair_columnar
        return max_min_fair_columnar(flows, capacities)
    return max_min_fair_scalar(flows, capacities)


def max_min_fair_scalar(flows: Sequence[FlowSpec],
                        capacities: Mapping[Resource, float]) -> List[float]:
    """The reference dict-loop progressive filling.

    Complexity: O(F·R) per filling round, at most F+R rounds — trivial
    for the tens of flows per tick the paper experiments need; the
    columnar backend exists for the 1000-server scenarios.
    """
    n = len(flows)
    rates = [0.0] * n
    frozen = [False] * n

    # Validate and normalise.
    for f in flows:
        for res, coef in f.coefficients.items():
            if coef <= 0:
                raise ValueError(f"coefficient must be > 0 (resource {res!r})")
        if f.demand < 0:
            raise ValueError("demand must be >= 0")

    remaining: Dict[Resource, float] = {}
    for res, cap in capacities.items():
        if cap < 0:
            raise ValueError(f"capacity must be >= 0 (resource {res!r})")
        remaining[res] = float(cap)

    # Flows with zero demand, or using a zero-capacity resource, freeze
    # immediately at 0.
    for i, f in enumerate(flows):
        if f.demand == 0:
            frozen[i] = True
        for res in f.coefficients:
            if res in remaining and remaining[res] == 0.0:
                frozen[i] = True

    # Per-resource live load (Σ coefficients over unfrozen flows) and
    # live-user count, maintained incrementally: a freeze subtracts the
    # flow's coefficients instead of re-summing every filling round
    # (that re-sum was O(F·R) per round).  The counter pins the load to
    # an exact 0.0 when a resource loses its last user, so subtraction
    # residue can never fabricate a tiny phantom load.
    live_load: Dict[Resource, float] = {res: 0.0 for res in remaining}
    live_users: Dict[Resource, int] = {res: 0 for res in remaining}
    for i, f in enumerate(flows):
        if frozen[i]:
            continue
        for res, coef in f.coefficients.items():
            if res in live_load:
                live_load[res] += coef
                live_users[res] += 1

    def retire(i: int) -> None:
        for res, coef in flows[i].coefficients.items():
            if res in live_load:
                live_users[res] -= 1
                if live_users[res] == 0:
                    live_load[res] = 0.0
                else:
                    live_load[res] -= coef

    rounds = 0
    for _round in range(n + len(remaining) + 1):
        live = [i for i in range(n) if not frozen[i]]
        if not live:
            break
        rounds += 1

        # Fastest-saturating resource under equal rate growth.
        step_res: Optional[float] = None
        for res, cap_left in remaining.items():
            load_per_unit = live_load[res]
            if load_per_unit > 0:
                s = cap_left / load_per_unit
                if step_res is None or s < step_res:
                    step_res = s

        # Closest demand cap.
        step_dem: Optional[float] = None
        for i in live:
            gap = flows[i].demand - rates[i]
            if math.isfinite(gap):
                if step_dem is None or gap < step_dem:
                    step_dem = gap

        candidates = [s for s in (step_res, step_dem) if s is not None]
        if not candidates:
            # Entirely unconstrained flows with infinite demand: no
            # finite fair share exists.
            raise ValueError(
                "unbounded allocation: an elastic flow touches no "
                "capacitated resource")
        step = max(0.0, min(candidates))

        # Advance all live flows and drain resources.
        for i in live:
            rates[i] += step
            for res, coef in flows[i].coefficients.items():
                if res in remaining:
                    remaining[res] -= coef * step
        for res in remaining:
            if remaining[res] < 1e-9:
                remaining[res] = 0.0

        # Freeze (and retire frozen flows from the live loads).
        for i in live:
            if rates[i] >= flows[i].demand - 1e-12:
                frozen[i] = True
                retire(i)
                continue
            for res, coef in flows[i].coefficients.items():
                if res in remaining and remaining[res] == 0.0:
                    frozen[i] = True
                    retire(i)
                    break
    OBS.metrics.inc("bandwidth.solves")
    OBS.metrics.inc("bandwidth.filling_rounds", rounds)
    return rates
