"""The testbed substitute: a discrete-event simulation core and a fluid
(max-min fair-share) IO bandwidth model.

The paper's Figures 2, 3 and 7 are produced by contention between
foreground client IO and background recovery/migration traffic on the
storage servers' disks.  We reproduce them with:

* :class:`Simulator` — a deterministic event-driven clock;
* :func:`max_min_fair` — progressive-filling max-min fair allocation of
  per-server disk bandwidth among flows with per-resource coefficients;
* :class:`FlowSet`/:class:`FluidFlow` — foreground and background flows
  (client IO, re-replication, re-integration) as fluid demands;
* :class:`IOModel` — the per-tick loop gluing flows to capacities and
  recording throughput timelines.

Two env switches tune the hot loop without changing any result (both
backends/paths are bit-identical, property- and trace-tested):
``REPRO_SOLVER`` picks the allocation backend (``auto`` / ``scalar`` /
``columnar`` — see :mod:`repro.simulation.columnar`), and
``REPRO_BATCH_TICKS`` toggles allocation reuse and horizon-batched
ticks across unchanged ticks.
"""

from repro.simulation.engine import Event, Simulator
from repro.simulation.bandwidth import max_min_fair, solver_mode
from repro.simulation.columnar import max_min_fair_columnar
from repro.simulation.flows import FluidFlow, FlowSet
from repro.simulation.iomodel import IOModel, batching_enabled

__all__ = [
    "Event",
    "Simulator",
    "max_min_fair",
    "max_min_fair_columnar",
    "solver_mode",
    "batching_enabled",
    "FluidFlow",
    "FlowSet",
    "IOModel",
]
