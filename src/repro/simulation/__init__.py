"""The testbed substitute: a discrete-event simulation core and a fluid
(max-min fair-share) IO bandwidth model.

The paper's Figures 2, 3 and 7 are produced by contention between
foreground client IO and background recovery/migration traffic on the
storage servers' disks.  We reproduce them with:

* :class:`Simulator` — a deterministic event-driven clock;
* :func:`max_min_fair` — progressive-filling max-min fair allocation of
  per-server disk bandwidth among flows with per-resource coefficients;
* :class:`FlowSet`/:class:`FluidFlow` — foreground and background flows
  (client IO, re-replication, re-integration) as fluid demands;
* :class:`IOModel` — the per-tick loop gluing flows to capacities and
  recording throughput timelines.
"""

from repro.simulation.engine import Event, Simulator
from repro.simulation.bandwidth import max_min_fair
from repro.simulation.flows import FluidFlow, FlowSet
from repro.simulation.iomodel import IOModel

__all__ = [
    "Event",
    "Simulator",
    "max_min_fair",
    "FluidFlow",
    "FlowSet",
    "IOModel",
]
