"""Fluid IO flows: finite transfers and open-ended streams.

A :class:`FluidFlow` is a demand on the cluster's disks: client IO, a
recovery (re-replication) batch, or a re-integration batch.  Finite
flows carry a byte total and complete; streams (client IO during a
phase) run until the driver retires them.  :class:`FlowSet` holds the
live flows and advances them tick by tick against a
:func:`~repro.simulation.bandwidth.max_min_fair` allocation.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import (
    Callable,
    Dict,
    FrozenSet,
    Hashable,
    List,
    Mapping,
    Optional,
)

from repro.obs.runtime import OBS
from repro.simulation.bandwidth import FlowSpec, max_min_fair

__all__ = ["FluidFlow", "FlowSet"]


@dataclass
class FluidFlow:
    """One fluid flow.

    Attributes
    ----------
    name:
        Label for timelines ("client", "migration", ...).
    coefficients:
        ``{server/resource: load per unit rate}`` — see
        :mod:`repro.simulation.bandwidth`.
    total_bytes:
        Remaining payload; ``None`` makes this an open-ended stream.
    rate_cap:
        Demand ceiling in bytes/s (token-bucket throttles and the
        Filebench ``rate`` attribute both express themselves here);
        ``inf`` = elastic.
    on_complete:
        Callback fired when a finite flow drains.
    ranks:
        Server ranks this transfer *depends on* (sources and
        destinations).  A fault that takes one of them out — crash,
        link loss — preempts the flow via
        :meth:`FlowSet.interrupt_involving`.  Empty = uninterruptible
        (client streams survive membership changes; their
        coefficients are just re-pointed).
    on_interrupt:
        Callback fired when the flow is preempted (after the flow has
        been removed from its set); the transfer layer re-enqueues the
        work here.
    """

    name: str
    coefficients: Mapping[Hashable, float]
    total_bytes: Optional[float] = None
    rate_cap: float = math.inf
    on_complete: Optional[Callable[["FluidFlow"], None]] = None
    ranks: FrozenSet[Hashable] = field(default_factory=frozenset)
    on_interrupt: Optional[Callable[["FluidFlow"], None]] = None

    #: Bytes moved so far (at the flow's logical rate).
    progressed: float = 0.0
    #: Rate granted in the last allocation round.
    last_rate: float = 0.0
    #: Lifecycle span opened by :meth:`FlowSet.add` (a
    #: :class:`repro.obs.spans.Span`); closed on finish or cancel.
    span: Optional[object] = None

    @property
    def remaining(self) -> float:
        if self.total_bytes is None:
            return math.inf
        return max(0.0, self.total_bytes - self.progressed)

    @property
    def done(self) -> bool:
        return self.total_bytes is not None and self.remaining <= 1e-6

    def demand_for(self, dt: float) -> float:
        """Rate demand for a tick of length *dt*: capped by the rate
        limit and, for finite flows, by what is left to move."""
        d = self.rate_cap
        if self.total_bytes is not None and dt > 0:
            d = min(d, self.remaining / dt)
        return d


class FlowSet:
    """The live flows plus per-tick advancement."""

    def __init__(self) -> None:
        self._flows: List[FluidFlow] = []

    def add(self, flow: FluidFlow, parent=None) -> FluidFlow:
        """Admit a flow, opening its ``flow`` lifecycle span (optionally
        parented to a larger lifecycle, e.g. a resize cycle)."""
        self._flows.append(flow)
        OBS.metrics.inc("flows.started")
        flow.span = OBS.spans.begin("flow", parent=parent, flow=flow.name)
        bus = OBS.bus
        if bus.active:
            bus.emit("flow.start", name=flow.name,
                     span_id=flow.span.span_id,
                     total_bytes=flow.total_bytes,
                     rate_cap=(None if math.isinf(flow.rate_cap)
                               else flow.rate_cap))
        return flow

    def remove(self, flow: FluidFlow) -> None:
        """Retire a flow the driver no longer wants (an open-ended
        stream at phase end, an abandoned transfer): emits
        ``flow.cancel`` and closes the span as cancelled."""
        self._flows.remove(flow)
        OBS.metrics.inc("flows.cancelled")
        bus = OBS.bus
        if bus.active:
            bus.emit("flow.cancel", name=flow.name,
                     span_id=(flow.span.span_id
                              if flow.span is not None else None),
                     nbytes=flow.progressed)
        if flow.span is not None:
            flow.span.end(status="cancelled")

    def interrupt(self, flow: FluidFlow, reason: str = "fault") -> float:
        """Preempt a transfer mid-flight (a fault hit one of its
        servers): the flow leaves the set, its partial progress is
        accounted as *wasted* work (the bytes must be re-sent — state
        only commits on completion), and ``on_interrupt`` fires so the
        owner can re-enqueue the transfer.  Returns the wasted bytes.
        """
        self._flows.remove(flow)
        wasted = flow.progressed
        OBS.metrics.inc("flows.interrupted")
        OBS.metrics.inc("flows.wasted_bytes", wasted)
        bus = OBS.bus
        if bus.active:
            bus.emit("flow.interrupt", name=flow.name,
                     span_id=(flow.span.span_id
                              if flow.span is not None else None),
                     nbytes=wasted, reason=reason)
        if flow.span is not None:
            flow.span.end(status="interrupted", reason=reason)
        if flow.on_interrupt is not None:
            flow.on_interrupt(flow)
        return wasted

    def involving(self, rank: Hashable) -> List[FluidFlow]:
        """Live flows that depend on *rank* (declared via
        :attr:`FluidFlow.ranks`)."""
        return [f for f in self._flows if rank in f.ranks]

    def interrupt_involving(self, rank: Hashable,
                            reason: str = "fault") -> float:
        """Preempt every transfer that depends on *rank*; returns the
        total wasted bytes."""
        wasted = 0.0
        for flow in self.involving(rank):
            wasted += self.interrupt(flow, reason=reason)
        return wasted

    def __len__(self) -> int:
        return len(self._flows)

    def __iter__(self):
        return iter(self._flows)

    def by_name(self, name: str) -> List[FluidFlow]:
        return [f for f in self._flows if f.name == name]

    # ------------------------------------------------------------------
    def advance(self, dt: float,
                capacities: Mapping[Hashable, float]) -> Dict[str, float]:
        """Allocate rates for one tick, advance progress, retire
        completed flows.

        Returns aggregate achieved rate per flow name (bytes/s) — the
        timeline samples Figures 3 and 7 plot.
        """
        if dt <= 0:
            raise ValueError("dt must be positive")
        live = [f for f in self._flows if not f.done]
        if not live:
            self._flows = []
            return {}
        specs = [FlowSpec(coefficients=f.coefficients,
                          demand=f.demand_for(dt)) for f in live]
        prof = OBS.profiler
        if prof is not None:
            prof.push("bandwidth.max_min_fair")
        try:
            if OBS.hot:
                with OBS.metrics.timer("perf.bandwidth.solve"):
                    rates = max_min_fair(specs, capacities)
            else:
                rates = max_min_fair(specs, capacities)
        finally:
            if prof is not None:
                prof.pop()
        bus = OBS.bus
        if bus.active:
            # Per-resource utilisation of this tick's allocation — the
            # bandwidth-cap invariant checker audits the maximum.
            usage: Dict[Hashable, float] = {}
            for f, rate in zip(live, rates):
                for res, coef in f.coefficients.items():
                    usage[res] = usage.get(res, 0.0) + coef * rate
            max_util, max_util_rank = 0.0, None
            for res, cap in capacities.items():
                if cap <= 0:
                    continue
                util = usage.get(res, 0.0) / cap
                if util > max_util:
                    max_util, max_util_rank = util, res
            bus.emit("bandwidth.solve", flows=len(live),
                     resources=len(capacities),
                     max_util=max_util, max_util_rank=max_util_rank)

        achieved: Dict[str, float] = {}
        for f, rate in zip(live, rates):
            f.last_rate = rate
            f.progressed += rate * dt
            achieved[f.name] = achieved.get(f.name, 0.0) + rate

        finished = [f for f in live if f.done]
        for f in finished:
            OBS.metrics.inc("flows.completed")
            if bus.active:
                bus.emit("flow.finish", name=f.name,
                         span_id=(f.span.span_id
                                  if f.span is not None else None),
                         nbytes=f.progressed)
            if f.span is not None:
                f.span.end(status="finished")
            if f.on_complete is not None:
                f.on_complete(f)
        self._flows = [f for f in self._flows if not f.done]
        return achieved
