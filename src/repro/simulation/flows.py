"""Fluid IO flows: finite transfers and open-ended streams.

A :class:`FluidFlow` is a demand on the cluster's disks: client IO, a
recovery (re-replication) batch, or a re-integration batch.  Finite
flows carry a byte total and complete; streams (client IO during a
phase) run until the driver retires them.  :class:`FlowSet` holds the
live flows and advances them tick by tick against a
:func:`~repro.simulation.bandwidth.max_min_fair` allocation.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import (
    Callable,
    Dict,
    FrozenSet,
    Hashable,
    List,
    Mapping,
    Optional,
)

from repro.obs.runtime import OBS
from repro.simulation.bandwidth import FlowSpec, max_min_fair

__all__ = ["FluidFlow", "FlowSet"]


@dataclass
class FluidFlow:
    """One fluid flow.

    Attributes
    ----------
    name:
        Label for timelines ("client", "migration", ...).
    coefficients:
        ``{server/resource: load per unit rate}`` — see
        :mod:`repro.simulation.bandwidth`.
    total_bytes:
        Remaining payload; ``None`` makes this an open-ended stream.
    rate_cap:
        Demand ceiling in bytes/s (token-bucket throttles and the
        Filebench ``rate`` attribute both express themselves here);
        ``inf`` = elastic.
    on_complete:
        Callback fired when a finite flow drains.
    ranks:
        Server ranks this transfer *depends on* (sources and
        destinations).  A fault that takes one of them out — crash,
        link loss — preempts the flow via
        :meth:`FlowSet.interrupt_involving`.  Empty = uninterruptible
        (client streams survive membership changes; their
        coefficients are just re-pointed).
    on_interrupt:
        Callback fired when the flow is preempted (after the flow has
        been removed from its set); the transfer layer re-enqueues the
        work here.
    """

    name: str
    coefficients: Mapping[Hashable, float]
    total_bytes: Optional[float] = None
    rate_cap: float = math.inf
    on_complete: Optional[Callable[["FluidFlow"], None]] = None
    ranks: FrozenSet[Hashable] = field(default_factory=frozenset)
    on_interrupt: Optional[Callable[["FluidFlow"], None]] = None

    #: Bytes moved so far (at the flow's logical rate).
    progressed: float = 0.0
    #: Rate granted in the last allocation round.
    last_rate: float = 0.0
    #: Lifecycle span opened by :meth:`FlowSet.add` (a
    #: :class:`repro.obs.spans.Span`); closed on finish or cancel.
    span: Optional[object] = None

    @property
    def remaining(self) -> float:
        if self.total_bytes is None:
            return math.inf
        return max(0.0, self.total_bytes - self.progressed)

    @property
    def done(self) -> bool:
        return self.total_bytes is not None and self.remaining <= 1e-6

    def demand_for(self, dt: float) -> float:
        """Rate demand for a tick of length *dt*: capped by the rate
        limit and, for finite flows, by what is left to move."""
        d = self.rate_cap
        if self.total_bytes is not None and dt > 0:
            d = min(d, self.remaining / dt)
        return d


class FlowSet:
    """The live flows plus per-tick advancement.

    Internally the set keeps a position index (``id(flow) →`` slot in
    the backing list) so :meth:`remove` and :meth:`interrupt` are O(1)
    tombstone writes instead of ``list.remove`` O(F) scans — a
    mass-interrupt fault storm used to be O(F²).  Tombstones preserve
    insertion order exactly (``interrupt_involving`` and iteration
    stay deterministic); the backing list compacts once more than
    half of it is dead.

    :attr:`generation` increments on every membership change (add /
    remove / interrupt / completion) — the allocation cache and
    :class:`~repro.simulation.iomodel.IOModel`'s horizon batching key
    on it to know when a cached max-min-fair solution is stale.
    """

    #: Compact the backing list when it holds at least this many
    #: tombstones and they outnumber the live flows.
    _COMPACT_MIN_DEAD = 32

    def __init__(self) -> None:
        self._flows: List[Optional[FluidFlow]] = []
        self._pos: Dict[int, int] = {}
        self._dead = 0
        #: Monotone membership version; any change invalidates cached
        #: allocations.
        self.generation = 0
        #: Last-solve snapshot for the batched fast path (see
        #: :meth:`advance_cached`).
        self._alloc: Optional[Dict[str, object]] = None

    # -- membership internals ------------------------------------------
    def _live_list(self) -> List[FluidFlow]:
        return [f for f in self._flows if f is not None]

    def _discard(self, flow: FluidFlow, *, strict: bool = True) -> bool:
        """Tombstone *flow* out of the set (O(1)); compacts when the
        dead fraction crosses one half."""
        pos = self._pos.pop(id(flow), None)
        if pos is None:
            if strict:
                raise ValueError(f"flow {flow.name!r} not in flow set")
            return False
        self._flows[pos] = None
        self._dead += 1
        self.generation += 1
        if (self._dead >= self._COMPACT_MIN_DEAD
                and self._dead > len(self._pos)):
            self._flows = self._live_list()
            self._pos = {id(f): i for i, f in enumerate(self._flows)}
            self._dead = 0
        return True

    def add(self, flow: FluidFlow, parent=None) -> FluidFlow:
        """Admit a flow, opening its ``flow`` lifecycle span (optionally
        parented to a larger lifecycle, e.g. a resize cycle)."""
        if id(flow) in self._pos:
            raise ValueError(f"flow {flow.name!r} already in flow set")
        self._pos[id(flow)] = len(self._flows)
        self._flows.append(flow)
        self.generation += 1
        OBS.metrics.inc("flows.started")
        flow.span = OBS.spans.begin("flow", parent=parent, flow=flow.name)
        bus = OBS.bus
        if bus.active:
            bus.emit("flow.start", name=flow.name,
                     span_id=flow.span.span_id,
                     total_bytes=flow.total_bytes,
                     rate_cap=(None if math.isinf(flow.rate_cap)
                               else flow.rate_cap))
        return flow

    def remove(self, flow: FluidFlow) -> None:
        """Retire a flow the driver no longer wants (an open-ended
        stream at phase end, an abandoned transfer): emits
        ``flow.cancel`` and closes the span as cancelled."""
        self._discard(flow)
        OBS.metrics.inc("flows.cancelled")
        bus = OBS.bus
        if bus.active:
            bus.emit("flow.cancel", name=flow.name,
                     span_id=(flow.span.span_id
                              if flow.span is not None else None),
                     nbytes=flow.progressed)
        if flow.span is not None:
            flow.span.end(status="cancelled")

    def interrupt(self, flow: FluidFlow, reason: str = "fault") -> float:
        """Preempt a transfer mid-flight (a fault hit one of its
        servers): the flow leaves the set, its partial progress is
        accounted as *wasted* work (the bytes must be re-sent — state
        only commits on completion), and ``on_interrupt`` fires so the
        owner can re-enqueue the transfer.  Returns the wasted bytes.
        """
        self._discard(flow)
        wasted = flow.progressed
        OBS.metrics.inc("flows.interrupted")
        OBS.metrics.inc("flows.wasted_bytes", wasted)
        bus = OBS.bus
        if bus.active:
            bus.emit("flow.interrupt", name=flow.name,
                     span_id=(flow.span.span_id
                              if flow.span is not None else None),
                     nbytes=wasted, reason=reason)
        if flow.span is not None:
            flow.span.end(status="interrupted", reason=reason)
        if flow.on_interrupt is not None:
            flow.on_interrupt(flow)
        return wasted

    def involving(self, rank: Hashable) -> List[FluidFlow]:
        """Live flows that depend on *rank* (declared via
        :attr:`FluidFlow.ranks`), in insertion order."""
        return [f for f in self._flows
                if f is not None and rank in f.ranks]

    def interrupt_involving(self, rank: Hashable,
                            reason: str = "fault") -> float:
        """Preempt every transfer that depends on *rank*; returns the
        total wasted bytes."""
        wasted = 0.0
        for flow in self.involving(rank):
            wasted += self.interrupt(flow, reason=reason)
        return wasted

    def __len__(self) -> int:
        return len(self._pos)

    def __iter__(self):
        # Snapshot so callers may remove/interrupt while iterating.
        return iter(self._live_list())

    def by_name(self, name: str) -> List[FluidFlow]:
        return [f for f in self._flows
                if f is not None and f.name == name]

    # ------------------------------------------------------------------
    @staticmethod
    def _solve_payload(live: List[FluidFlow], rates: List[float],
                       capacities: Mapping[Hashable, float]
                       ) -> Dict[str, object]:
        """The ``bandwidth.solve`` event fields: per-resource
        utilisation of an allocation — the bandwidth-cap invariant
        checker audits the maximum."""
        usage: Dict[Hashable, float] = {}
        for f, rate in zip(live, rates):
            for res, coef in f.coefficients.items():
                usage[res] = usage.get(res, 0.0) + coef * rate
        max_util, max_util_rank = 0.0, None
        for res, cap in capacities.items():
            if cap <= 0:
                continue
            util = usage.get(res, 0.0) / cap
            if util > max_util:
                max_util, max_util_rank = util, res
        return {"flows": len(live), "resources": len(capacities),
                "max_util": max_util, "max_util_rank": max_util_rank}

    def _finish(self, finished: List[FluidFlow], bus) -> None:
        """Completion processing shared by every advance path: metric,
        ``flow.finish`` event, span close, ``on_complete`` callback,
        then removal.  The callback may add or remove other flows —
        removal below is lenient for exactly that reason."""
        for f in finished:
            OBS.metrics.inc("flows.completed")
            if bus.active:
                bus.emit("flow.finish", name=f.name,
                         span_id=(f.span.span_id
                                  if f.span is not None else None),
                         nbytes=f.progressed)
            if f.span is not None:
                f.span.end(status="finished")
            if f.on_complete is not None:
                f.on_complete(f)
        for f in finished:
            self._discard(f, strict=False)

    def advance(self, dt: float,
                capacities: Mapping[Hashable, float]) -> Dict[str, float]:
        """Allocate rates for one tick, advance progress, retire
        completed flows.

        Returns aggregate achieved rate per flow name (bytes/s) — the
        timeline samples Figures 3 and 7 plot.

        The solve's inputs and outputs are snapshotted so subsequent
        unchanged ticks can go through :meth:`advance_cached` without
        re-solving.
        """
        if dt <= 0:
            raise ValueError("dt must be positive")
        self._alloc = None
        flows = self._live_list()
        live = [f for f in flows if not f.done]
        if len(live) != len(flows):
            # Drop flows already done on entry (a driver retired one by
            # clamping total_bytes) — silently, as the tail filter
            # always has.
            for f in flows:
                if f.done:
                    self._discard(f, strict=False)
        if not live:
            return {}
        demands = [f.demand_for(dt) for f in live]
        specs = [FlowSpec(coefficients=f.coefficients, demand=d)
                 for f, d in zip(live, demands)]
        prof = OBS.profiler
        if prof is not None:
            prof.push("bandwidth.max_min_fair")
        try:
            if OBS.hot:
                with OBS.metrics.timer("perf.bandwidth.solve"):
                    rates = max_min_fair(specs, capacities)
            else:
                rates = max_min_fair(specs, capacities)
        finally:
            if prof is not None:
                prof.pop()
        bus = OBS.bus
        payload: Optional[Dict[str, object]] = None
        if bus.active:
            payload = self._solve_payload(live, rates, capacities)
            bus.emit("bandwidth.solve", **payload)

        achieved: Dict[str, float] = {}
        for f, rate in zip(live, rates):
            f.last_rate = rate
            f.progressed += rate * dt
            achieved[f.name] = achieved.get(f.name, 0.0) + rate

        finished = [f for f in live if f.done]
        if finished:
            self._finish(finished, bus)
        else:
            # Nothing completed: the allocation is reusable while the
            # membership, coefficients, caps, demands and capacities
            # hold still.  (A completion changes the flow set, so the
            # next tick must re-solve anyway.)
            self._alloc = {
                "generation": self.generation,
                "dt": dt,
                "live": live,
                # Order-sensitive value snapshot: identity alone cannot
                # prove freshness — a driver (the serving throttle, a
                # coefficient refresh) may mutate a coefficient mapping
                # *in place*, leaving the identity unchanged while the
                # solve inputs drift.
                "coeff_items": [list(f.coefficients.items())
                                for f in live],
                "caps": [f.rate_cap for f in live],
                "demands": demands,
                "rates": rates,
                "incs": [r * dt for r in rates],
                "achieved": achieved,
                "payload": payload,
                "capacities": capacities,
            }
        return achieved

    def advance_cached(self, dt: float) -> Optional[Dict[str, float]]:
        """One tick through the cached allocation, or ``None`` when the
        cache cannot be proven fresh (then the caller re-solves via
        :meth:`advance`).

        Soundness, not heuristics: the cached rates are the exact
        solver output for inputs (coefficient mappings by ordered
        value, rate caps, demands bit-for-bit, membership generation)
        — when all of those compare equal and the caller vouches for
        unchanged capacities, the solver would return the identical
        rates, so skipping it cannot change a single sample or trace
        byte.  Coefficients are compared by *value* (ordered items),
        not identity: a throttle that mutates a flow's coefficient
        mapping in place between ticks must invalidate the cache even
        though the mapping object never changed.
        """
        a = self._alloc
        if a is None or a["generation"] != self.generation or dt != a["dt"]:
            return None
        live: List[FluidFlow] = a["live"]          # type: ignore[assignment]
        for f, items, cap, dem in zip(live, a["coeff_items"], a["caps"],
                                      a["demands"]):
            if (f.rate_cap != cap or f.demand_for(dt) != dem
                    or list(f.coefficients.items()) != items):
                return None
        bus = OBS.bus
        if bus.active:
            payload = a["payload"]
            if payload is None:
                payload = self._solve_payload(live, a["rates"],
                                              a["capacities"])
                a["payload"] = payload
            bus.emit("bandwidth.solve", **payload)
        OBS.metrics.inc("bandwidth.reused")
        for f, rate, inc in zip(live, a["rates"], a["incs"]):
            f.last_rate = rate
            f.progressed += inc
        finished = [f for f in live if f.done]
        if finished:
            self._finish(finished, bus)     # bumps generation
        return dict(a["achieved"])
