"""Fluid IO flows: finite transfers and open-ended streams.

A :class:`FluidFlow` is a demand on the cluster's disks: client IO, a
recovery (re-replication) batch, or a re-integration batch.  Finite
flows carry a byte total and complete; streams (client IO during a
phase) run until the driver retires them.  :class:`FlowSet` holds the
live flows and advances them tick by tick against a
:func:`~repro.simulation.bandwidth.max_min_fair` allocation.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Callable, Dict, Hashable, List, Mapping, Optional

from repro.obs.runtime import OBS
from repro.simulation.bandwidth import FlowSpec, max_min_fair

__all__ = ["FluidFlow", "FlowSet"]


@dataclass
class FluidFlow:
    """One fluid flow.

    Attributes
    ----------
    name:
        Label for timelines ("client", "migration", ...).
    coefficients:
        ``{server/resource: load per unit rate}`` — see
        :mod:`repro.simulation.bandwidth`.
    total_bytes:
        Remaining payload; ``None`` makes this an open-ended stream.
    rate_cap:
        Demand ceiling in bytes/s (token-bucket throttles and the
        Filebench ``rate`` attribute both express themselves here);
        ``inf`` = elastic.
    on_complete:
        Callback fired when a finite flow drains.
    """

    name: str
    coefficients: Mapping[Hashable, float]
    total_bytes: Optional[float] = None
    rate_cap: float = math.inf
    on_complete: Optional[Callable[["FluidFlow"], None]] = None

    #: Bytes moved so far (at the flow's logical rate).
    progressed: float = 0.0
    #: Rate granted in the last allocation round.
    last_rate: float = 0.0

    @property
    def remaining(self) -> float:
        if self.total_bytes is None:
            return math.inf
        return max(0.0, self.total_bytes - self.progressed)

    @property
    def done(self) -> bool:
        return self.total_bytes is not None and self.remaining <= 1e-6

    def demand_for(self, dt: float) -> float:
        """Rate demand for a tick of length *dt*: capped by the rate
        limit and, for finite flows, by what is left to move."""
        d = self.rate_cap
        if self.total_bytes is not None and dt > 0:
            d = min(d, self.remaining / dt)
        return d


class FlowSet:
    """The live flows plus per-tick advancement."""

    def __init__(self) -> None:
        self._flows: List[FluidFlow] = []

    def add(self, flow: FluidFlow) -> FluidFlow:
        self._flows.append(flow)
        OBS.metrics.inc("flows.started")
        bus = OBS.bus
        if bus.active:
            bus.emit("flow.start", name=flow.name,
                     total_bytes=flow.total_bytes,
                     rate_cap=(None if math.isinf(flow.rate_cap)
                               else flow.rate_cap))
        return flow

    def remove(self, flow: FluidFlow) -> None:
        self._flows.remove(flow)

    def __len__(self) -> int:
        return len(self._flows)

    def __iter__(self):
        return iter(self._flows)

    def by_name(self, name: str) -> List[FluidFlow]:
        return [f for f in self._flows if f.name == name]

    # ------------------------------------------------------------------
    def advance(self, dt: float,
                capacities: Mapping[Hashable, float]) -> Dict[str, float]:
        """Allocate rates for one tick, advance progress, retire
        completed flows.

        Returns aggregate achieved rate per flow name (bytes/s) — the
        timeline samples Figures 3 and 7 plot.
        """
        if dt <= 0:
            raise ValueError("dt must be positive")
        live = [f for f in self._flows if not f.done]
        if not live:
            self._flows = []
            return {}
        specs = [FlowSpec(coefficients=f.coefficients,
                          demand=f.demand_for(dt)) for f in live]
        if OBS.hot:
            with OBS.metrics.timer("perf.bandwidth.solve"):
                rates = max_min_fair(specs, capacities)
        else:
            rates = max_min_fair(specs, capacities)
        bus = OBS.bus
        if bus.active:
            bus.emit("bandwidth.solve", flows=len(live),
                     resources=len(capacities))

        achieved: Dict[str, float] = {}
        for f, rate in zip(live, rates):
            f.last_rate = rate
            f.progressed += rate * dt
            achieved[f.name] = achieved.get(f.name, 0.0) + rate

        finished = [f for f in live if f.done]
        for f in finished:
            OBS.metrics.inc("flows.completed")
            if bus.active:
                bus.emit("flow.finish", name=f.name, nbytes=f.progressed)
            if f.on_complete is not None:
                f.on_complete(f)
        self._flows = [f for f in self._flows if not f.done]
        return achieved
