"""Parallel sweep orchestration: independent seeded runs across a
process pool, merged into a deterministic aggregate.

The repo's multi-seed experiments — robustness checks, chaos property
matrices, trace-policy grids — are embarrassingly parallel, yet ran
one at a time.  This package supplies the fan-out:

* :class:`TaskSpec` — the picklable unit of work (experiment kind +
  seed + config + optional fault plan);
* :func:`repro.runner.worker.run_task` — worker-side execution with
  per-task trace routing, live invariant checking and a structured
  outcome;
* :class:`SweepRunner` — the ``ProcessPoolExecutor`` driver whose
  aggregate report is byte-identical for ``workers=1`` and
  ``workers=N`` (results merge by task id, never by completion
  order), with crash/timeout retries under
  :class:`~repro.faults.retry.RetryPolicy`.

``python -m repro sweep`` is the CLI surface.
"""

from repro.runner.spec import TaskSpec
from repro.runner.sweep import (
    SweepResult,
    SweepRunner,
    TaskResult,
    render_sweep_report,
)
from repro.runner.worker import run_task

__all__ = [
    "TaskSpec",
    "TaskResult",
    "SweepRunner",
    "SweepResult",
    "render_sweep_report",
    "run_task",
]
