"""Sweep task specifications: the picklable unit of work.

A :class:`TaskSpec` names one independent seeded run — an experiment
kind, a seed, a config dict, and (for chaos tasks) an optional fault
plan serialised as JSON.  Specs cross the process boundary by pickle
(executor submission) and by JSON (the aggregate report), so every
field is restricted to plain JSON-representable values.

The ``task_id`` doubles as the per-run directory name and as the merge
key: the sweep runner aggregates results **by task id, never by
completion order**, which is what makes the aggregate report
byte-identical regardless of worker count.
"""

from __future__ import annotations

import re
from dataclasses import dataclass, field
from typing import Dict, Optional

__all__ = ["TaskSpec"]

#: Task ids become directory names and sort keys — keep them to a
#: filesystem- and shell-safe alphabet.
_ID_RE = re.compile(r"^[A-Za-z0-9][A-Za-z0-9._-]*$")


@dataclass(frozen=True)
class TaskSpec:
    """One independent run of a sweep.

    Attributes
    ----------
    task_id:
        Unique, stable identifier.  Used as the per-run directory name
        under the sweep's output directory and as the deterministic
        merge/sort key of the aggregate report.
    kind:
        Experiment kind — a key of
        :data:`repro.runner.worker.EXPERIMENTS` (``"chaos"``,
        ``"trace"``, ``"three-phase"``, and the test-only
        ``"selftest"``).
    seed:
        The run's seed (semantics are per kind: fault-plan seed for
        chaos, trace-generator seed for trace runs).
    config:
        Kind-specific keyword arguments, JSON-representable.
    plan:
        Optional :meth:`repro.faults.FaultPlan.to_json` string applied
        to chaos tasks instead of generating a plan from the seed.
    """

    task_id: str
    kind: str
    seed: Optional[int] = None
    config: Dict[str, object] = field(default_factory=dict)
    plan: Optional[str] = None

    def __post_init__(self) -> None:
        if not _ID_RE.match(self.task_id):
            raise ValueError(
                f"invalid task_id {self.task_id!r}: must match "
                f"{_ID_RE.pattern} (it names a directory)")
        if len(self.task_id) > 128:
            raise ValueError("task_id too long (max 128 characters)")
        if not self.kind or not isinstance(self.kind, str):
            raise ValueError("kind must be a non-empty string")
        if self.seed is not None and not isinstance(self.seed, int):
            raise ValueError("seed must be an int or None")

    # ------------------------------------------------------------------
    def to_dict(self) -> Dict[str, object]:
        """JSON/pickle-friendly form (the executor submission payload)."""
        return {
            "task_id": self.task_id,
            "kind": self.kind,
            "seed": self.seed,
            "config": dict(self.config),
            "plan": self.plan,
        }

    @classmethod
    def from_dict(cls, data: Dict[str, object]) -> "TaskSpec":
        return cls(
            task_id=str(data["task_id"]),
            kind=str(data["kind"]),
            seed=data.get("seed"),            # type: ignore[arg-type]
            config=dict(data.get("config") or {}),
            plan=data.get("plan"),            # type: ignore[arg-type]
        )
