"""Worker-side task execution: what runs inside each pool process.

:func:`run_task` is the single entry point the
:class:`~repro.runner.sweep.SweepRunner` submits to its
``ProcessPoolExecutor``.  It is a **pure function of the spec** (plus
the attempt ordinal): it resets the process-wide observability runtime,
routes the run's trace into the task's own directory, executes the
experiment with a live :class:`~repro.obs.invariants.CheckerSink`
attached, snapshots the metrics registry, and returns a structured,
JSON-clean outcome dict.  Nothing in the outcome depends on wall-clock
time or on which worker ran it, which is what lets the parent merge
results by task id into a byte-identical aggregate.

Per-run directory layout (under the sweep's ``--out DIR``)::

    <task_id>/trace.jsonl     the run's full JSONL trace
    <task_id>/metrics.json    metrics-registry snapshot
    <task_id>/analytics.json  per-task repro.analytics document
    <task_id>/outcome.json    the same outcome dict returned to the parent

Experiment kinds are looked up in :data:`EXPERIMENTS`; registering a
new kind is one entry mapping ``kind -> fn(spec, attempt) ->
(summary, healthy)``.  The ``"selftest"`` kind exists purely so the
runner's own failure handling (retry, worker death, timeouts) can be
exercised deterministically from tests.
"""

from __future__ import annotations

import json
import os
import time
from pathlib import Path
from typing import Callable, Dict, Tuple

from repro.experiments import run_three_phase, run_trace_analysis
from repro.faults import FaultPlan, run_chaos
from repro.obs import JSONLSink, OBS, Profiler, profile_document
from repro.obs.analytics import analytics_from_trace, dump_analytics
from repro.obs.invariants import CheckerSink
from repro.obs.report import EmptyTraceError
from repro.runner.spec import TaskSpec

__all__ = [
    "EXPERIMENTS",
    "run_task",
    "TRACE_FILENAME",
    "METRICS_FILENAME",
    "OUTCOME_FILENAME",
    "PROFILE_FILENAME",
    "ANALYTICS_FILENAME",
    "ANALYTICS_BIN_SECONDS",
]

TRACE_FILENAME = "trace.jsonl"
METRICS_FILENAME = "metrics.json"
OUTCOME_FILENAME = "outcome.json"
PROFILE_FILENAME = "profile.json"
ANALYTICS_FILENAME = "analytics.json"

#: Bin width of the per-task analytics series.  A constant (not a
#: knob) on purpose: the sweep rollup refuses to merge documents with
#: differing windows, so every worker must agree.
ANALYTICS_BIN_SECONDS = 10.0

#: Violations listed per task in the aggregate (the count stays exact).
MAX_LISTED_VIOLATIONS = 50


def _jsonify(value):
    """Recursively coerce numpy scalars / tuples into plain JSON types
    so the aggregate is loadable (and byte-stable) everywhere."""
    if isinstance(value, dict):
        return {str(k): _jsonify(v) for k, v in value.items()}
    if isinstance(value, (list, tuple)):
        return [_jsonify(v) for v in value]
    if isinstance(value, bool) or value is None or isinstance(value, str):
        return value
    if isinstance(value, int):
        return int(value)
    if isinstance(value, float):
        return float(value)
    # numpy scalars expose item(); anything else falls back to repr.
    item = getattr(value, "item", None)
    if callable(item):
        return _jsonify(item())
    return repr(value)


# ----------------------------------------------------------------------
# experiment kinds
# ----------------------------------------------------------------------
def _run_chaos_task(spec: TaskSpec, attempt: int) -> Tuple[Dict, bool]:
    plan = FaultPlan.from_json(spec.plan) if spec.plan else None
    seed = spec.seed if spec.seed is not None else 7
    # check=False: the worker's own CheckerSink already watches the
    # bus, so the harness does not need a second suite.
    result = run_chaos(seed=seed, plan=plan, check=False,
                       **dict(spec.config))
    summary = {
        "duration": result.duration,
        "phase_ends": result.phase_ends,
        "faults": len(result.faults),
        "transfers": result.transfers,
        "wasted_bytes": result.wasted_bytes,
        "lost_objects": len(result.lost_objects),
        "degraded_objects": len(result.degraded_objects),
        "degraded_reads": result.degraded_reads,
        "unavailable_reads": result.unavailable_reads,
        "dirty_backlog": result.dirty_backlog,
        "final_audit": {
            "lost": int(result.final_audit.get("lost", 0)),
            "under_replicated":
                int(result.final_audit.get("under_replicated", 0)),
        },
        "peak_throughput": result.peak_throughput,
        "mean_throughput": result.mean_throughput,
    }
    return summary, result.ok


def _run_trace_task(spec: TaskSpec, attempt: int) -> Tuple[Dict, bool]:
    config = dict(spec.config)
    which = config.pop("which", "CC-a")
    exp = run_trace_analysis(which, seed=spec.seed, **config)
    rel = exp.table2_row()
    summary = {
        "which": which,
        "ideal_machine_hours": exp.analysis.ideal_machine_hours,
        "machine_hours": {name: res.machine_hours
                          for name, res in exp.analysis.results.items()},
        "relative_machine_hours": rel,
    }
    # A policy beating the clairvoyant ideal (or a non-finite ratio)
    # means the analysis itself is broken.
    healthy = all(v == v and v >= 1.0 for v in rel.values())
    return summary, healthy


def _run_three_phase_task(spec: TaskSpec, attempt: int) -> Tuple[Dict, bool]:
    config = dict(spec.config)
    mode = config.pop("mode", "selective")
    result = run_three_phase(mode, **config)
    p2 = result.phase_ends["phase2"]
    summary = {
        "mode": mode,
        "phase_ends": result.phase_ends,
        "peak_throughput": max(result.throughput),
        "mean_phase3_throughput":
            result.mean_throughput(p2, result.phase_ends["phase3"]),
        "recovery_time_after_p2": result.recovery_time_after(p2),
        "migrated_bytes": result.migrated_bytes,
        "rereplicated_bytes": result.rereplicated_bytes,
    }
    return summary, True


def _run_selftest_task(spec: TaskSpec, attempt: int) -> Tuple[Dict, bool]:
    """Deterministic failure modes for the runner's own tests.

    Config keys: ``fail_attempts`` (attempts 1..k misbehave),
    ``mode`` (``"raise"`` | ``"exit"`` — die without cleanup, the
    worker-crash case | ``"hang"`` — sleep past any timeout),
    ``delay`` (sleep this long before acting, to sequence failures
    against sibling tasks), ``unhealthy`` (finish but report
    unhealthy), ``echo`` (round-trip payload).
    """
    config = spec.config
    delay = float(config.get("delay", 0.0))
    if delay:
        time.sleep(delay)
    if attempt <= int(config.get("fail_attempts", 0)):
        mode = config.get("mode", "raise")
        if mode == "exit":
            os._exit(17)
        if mode == "hang":
            time.sleep(float(config.get("hang_seconds", 3600.0)))
        raise RuntimeError(
            f"selftest: planned failure on attempt {attempt}")
    OBS.bus.emit("selftest.run", t=0.0, task=spec.task_id)
    summary = {"echo": config.get("echo")}
    return summary, not bool(config.get("unhealthy", False))


EXPERIMENTS: Dict[str, Callable[[TaskSpec, int], Tuple[Dict, bool]]] = {
    "chaos": _run_chaos_task,
    "trace": _run_trace_task,
    "three-phase": _run_three_phase_task,
    "selftest": _run_selftest_task,
}


# ----------------------------------------------------------------------
# the entry point
# ----------------------------------------------------------------------
def run_task(spec_dict: Dict[str, object], out_dir: str,
             attempt: int = 1, profile: bool = False) -> Dict[str, object]:
    """Execute one task in the current process and return its outcome.

    Takes the spec as a plain dict (cheapest thing to pickle across
    the pool boundary); *attempt* is the 1-based launch ordinal so
    retried tasks can be distinguished — and so the test-only selftest
    kind can fail deterministically on early attempts.  With *profile*
    a per-task ``profile.json`` lands next to the trace; like
    ``run_info.json`` it holds wall-clock data and is **not** part of
    the deterministic surface (the trace and outcome are byte-identical
    either way).
    """
    spec = TaskSpec.from_dict(spec_dict)
    fn = EXPERIMENTS.get(spec.kind)
    if fn is None:
        raise ValueError(
            f"unknown experiment kind {spec.kind!r} "
            f"(known: {', '.join(sorted(EXPERIMENTS))})")
    task_dir = Path(out_dir) / spec.task_id
    task_dir.mkdir(parents=True, exist_ok=True)

    # Fresh observability world per task: pool workers are reused, so
    # whatever the previous task left behind must not leak into this
    # run's trace or metrics.
    OBS.reset()
    sink = JSONLSink(str(task_dir / TRACE_FILENAME))
    checker = CheckerSink()
    OBS.bus.attach(sink)
    OBS.bus.attach(checker)
    profiler = None
    if profile:
        profiler = Profiler()
        OBS.profiler = profiler
        profiler.push(f"task:{spec.kind}")
    try:
        summary, healthy = fn(spec, attempt)
    finally:
        OBS.profiler = None
        OBS.bus.detach(checker)
        OBS.bus.detach(sink)
        sink.close()
    if profiler is not None:
        profiler.stop()
        doc = profile_document(profiler, command=f"sweep:{spec.kind}",
                               meta={"task": spec.task_id,
                                     "attempt": attempt})
        (task_dir / PROFILE_FILENAME).write_text(
            json.dumps(doc, indent=2, sort_keys=True) + "\n")

    violations = [v.describe() for v in checker.finish()]
    metrics = OBS.metrics.snapshot()
    (task_dir / METRICS_FILENAME).write_text(
        json.dumps(_jsonify(metrics), indent=2, sort_keys=True) + "\n")

    # Per-task analytics: built from the task's own finished trace so
    # the parent can merge rollups by task id without re-reading every
    # trace.  Sim-derived only — part of the deterministic surface.
    try:
        analytics = analytics_from_trace(
            str(task_dir / TRACE_FILENAME),
            bin_seconds=ANALYTICS_BIN_SECONDS)
    except EmptyTraceError:
        pass          # a task that emitted no events has no series
    else:
        analytics["source"] = TRACE_FILENAME   # relative: dir-movable
        dump_analytics(analytics, str(task_dir / ANALYTICS_FILENAME))

    ok = healthy and not violations
    outcome: Dict[str, object] = _jsonify({
        "task": spec.task_id,
        "kind": spec.kind,
        "seed": spec.seed,
        "status": "ok" if ok else "unhealthy",
        "healthy": ok,
        "attempts": attempt,
        "events": sink.events_written,
        "violations": violations[:MAX_LISTED_VIOLATIONS],
        "violation_count": len(violations),
        "summary": summary,
    })
    (task_dir / OUTCOME_FILENAME).write_text(
        json.dumps(outcome, indent=2, sort_keys=True) + "\n")
    return outcome
