"""The process-pool sweep runner with deterministic aggregation.

A *sweep* is a set of independent seeded runs — exactly the shape of
the paper's §V evaluation grids (multi-seed robustness checks, the
chaos property matrix, the four-policy trace analyses).  The runner
fans the tasks across a ``concurrent.futures.ProcessPoolExecutor`` and
merges results **by task id, never by completion order**, so the
aggregate report is byte-identical for ``--workers 1`` and
``--workers N``:

* every task captures its own JSONL trace, metrics snapshot and
  outcome into ``<out>/<task_id>/`` (see :mod:`repro.runner.worker`);
* the aggregate ``sweep.json`` contains only simulation-derived
  values, dumped with sorted keys in task-id order — wall-clock
  timings and worker counts live in the separate ``run_info.json``,
  which is *not* part of the deterministic surface;
* ``merged.jsonl`` concatenates the per-task traces in task-id order,
  separated by ``sweep.task`` boundary events that
  :class:`~repro.obs.invariants.InvariantSuite` recognises — so
  ``repro check merged.jsonl`` validates every run in one pass;
* each worker also writes a per-task ``analytics.json``
  (:mod:`repro.obs.analytics`), and the runner merges them — again by
  task id — into ``analytics_rollup.json``: per-bin min/median/max
  bands and latency-percentile bands across seeds, readable with
  ``repro timeline analytics_rollup.json``.

Failure handling reuses :class:`~repro.faults.retry.RetryPolicy`: a
task that raises, times out, or takes its worker process down with it
is re-enqueued with deterministic backoff until the policy's launch
budget is spent, after which it is surfaced as a *failed* task in the
report — never silently dropped.
"""

from __future__ import annotations

import json
import time
from concurrent.futures import FIRST_COMPLETED, Future, wait
from concurrent.futures import ProcessPoolExecutor
from concurrent.futures.process import BrokenProcessPool
from dataclasses import dataclass
from pathlib import Path
from typing import Dict, List, Optional, Sequence, Tuple

from repro.faults.retry import RetryPolicy
from repro.obs.analytics import (AnalyticsError, dump_analytics,
                                 load_analytics, merge_analytics)
from repro.obs.invariants import SWEEP_BOUNDARY_KIND
from repro.obs.stats import check_window, event_in_window
from repro.obs.trace import read_jsonl
from repro.runner import worker as worker_mod
from repro.runner.spec import TaskSpec

__all__ = [
    "SweepRunner",
    "SweepResult",
    "TaskResult",
    "render_sweep_report",
    "AGGREGATE_FILENAME",
    "MERGED_TRACE_FILENAME",
    "RUN_INFO_FILENAME",
    "PROFILE_ROLLUP_FILENAME",
    "ANALYTICS_ROLLUP_FILENAME",
]

AGGREGATE_FILENAME = "sweep.json"
MERGED_TRACE_FILENAME = "merged.jsonl"
RUN_INFO_FILENAME = "run_info.json"
PROFILE_ROLLUP_FILENAME = "profile_rollup.json"
ANALYTICS_ROLLUP_FILENAME = "analytics_rollup.json"

#: Cap on the idle sleep while every task is backing off (wall
#: seconds) — bounds the worst case should the clock readings jitter.
_MAX_IDLE_SLEEP = 1.0


@dataclass
class TaskResult:
    """Final state of one task after all retries."""

    spec: TaskSpec
    #: ``"ok"`` | ``"unhealthy"`` (ran, but violations / degraded) |
    #: ``"failed"`` (never produced an outcome within the retry budget).
    status: str
    #: Launches consumed (1 = clean first run).
    attempts: int
    #: The worker's outcome dict for tasks that finished.
    outcome: Optional[Dict[str, object]] = None
    #: Last error string for failed tasks.
    error: Optional[str] = None

    @property
    def healthy(self) -> bool:
        return self.status == "ok"


@dataclass
class SweepResult:
    """Everything one sweep produced, merge-keyed by task id."""

    out_dir: Path
    tasks: List[TaskResult]          # sorted by task_id
    workers: int
    wall_seconds: float
    retries: int
    aggregate_path: Path
    merged_trace_path: Path
    #: Sweep-level hotspot rollup (wall-clock, quarantined like
    #: run_info.json); None unless the sweep profiled its tasks.
    profile_rollup_path: Optional[Path] = None
    #: Cross-task ``repro.analytics.rollup`` document (per-bin bands
    #: and latency-percentile bands across seeds), merged by task id —
    #: byte-identical for any worker count.  None when no task
    #: produced analytics.
    analytics_rollup_path: Optional[Path] = None

    @property
    def ok(self) -> bool:
        """Every task ran and ended healthy."""
        return all(t.healthy for t in self.tasks)

    @property
    def counts(self) -> Dict[str, int]:
        out = {"tasks": len(self.tasks), "ok": 0, "unhealthy": 0,
               "failed": 0}
        for t in self.tasks:
            out[t.status] += 1
        return out

    def task(self, task_id: str) -> TaskResult:
        for t in self.tasks:
            if t.spec.task_id == task_id:
                return t
        raise KeyError(f"no task {task_id!r} in this sweep")


class SweepRunner:
    """Fan independent tasks across a process pool, deterministically.

    Parameters
    ----------
    workers:
        Pool size.  ``workers=1`` still runs tasks in a child process,
        so the execution environment — and therefore every byte of the
        output — is identical to a parallel run.
    retry:
        Backoff/quarantine policy for crashed or timed-out tasks; the
        default allows three launches per task.
    task_timeout:
        Per-launch wall-clock budget in seconds.  A task exceeding it
        is treated like a crashed attempt (the pool is recycled to
        reclaim the stuck worker).
    since / until:
        Optional half-open ``[since, until)`` simulation-time window
        for the per-task ``events_in_window`` counts of the aggregate
        — the same predicate and guard as ``repro stats``.
    profile:
        Run every task with the instrumentation profiler attached:
        each task dir gains a ``profile.json`` and the sweep writes a
        ``profile_rollup.json`` aggregating the per-task hotspot maps
        **by task id** (never completion order).  Wall-clock only —
        the deterministic artefacts (``sweep.json``,
        ``merged.jsonl``, traces) are byte-identical either way.
    """

    def __init__(self, workers: int = 1,
                 retry: Optional[RetryPolicy] = None,
                 task_timeout: Optional[float] = None,
                 since: Optional[float] = None,
                 until: Optional[float] = None,
                 profile: bool = False) -> None:
        if workers < 1:
            raise ValueError("workers must be >= 1")
        if task_timeout is not None and task_timeout <= 0:
            raise ValueError("task_timeout must be positive")
        check_window(since, until)
        self.workers = int(workers)
        self.retry = retry if retry is not None else RetryPolicy(
            base_delay=0.1, max_delay=2.0, max_attempts=3)
        self.task_timeout = task_timeout
        self.since = since
        self.until = until
        self.profile = bool(profile)

    # ------------------------------------------------------------------
    def run(self, specs: Sequence[TaskSpec], out_dir) -> SweepResult:
        """Execute every spec and write the aggregate artefacts."""
        specs = list(specs)
        if not specs:
            raise ValueError("sweep needs at least one task")
        ids = [s.task_id for s in specs]
        if len(set(ids)) != len(ids):
            dupes = sorted({i for i in ids if ids.count(i) > 1})
            raise ValueError(f"duplicate task ids: {', '.join(dupes)}")

        out = Path(out_dir)
        out.mkdir(parents=True, exist_ok=True)
        t0 = time.monotonic()
        results, retries = self._execute(specs, out)
        wall = time.monotonic() - t0

        ordered = [results[tid] for tid in sorted(results)]
        aggregate_path = self._write_aggregate(ordered, out)
        merged_path = self._write_merged_trace(ordered, out)
        rollup_path = (self._write_profile_rollup(ordered, out)
                       if self.profile else None)
        analytics_path = self._write_analytics_rollup(ordered, out)
        result = SweepResult(
            out_dir=out, tasks=ordered, workers=self.workers,
            wall_seconds=wall, retries=retries,
            aggregate_path=aggregate_path,
            merged_trace_path=merged_path,
            profile_rollup_path=rollup_path,
            analytics_rollup_path=analytics_path)
        # Run facts that legitimately differ between runs (wall clock,
        # pool size) stay out of the deterministic aggregate.
        (out / RUN_INFO_FILENAME).write_text(json.dumps(
            {"workers": self.workers,
             "wall_seconds": round(wall, 3),
             "retries": retries},
            indent=2, sort_keys=True) + "\n")
        return result

    # ------------------------------------------------------------------
    # scheduling
    # ------------------------------------------------------------------
    def _new_executor(self) -> ProcessPoolExecutor:
        return ProcessPoolExecutor(max_workers=self.workers)

    @staticmethod
    def _kill_executor(executor: ProcessPoolExecutor) -> None:
        """Tear a pool down even if a worker is stuck mid-task."""
        processes = getattr(executor, "_processes", None) or {}
        for proc in list(processes.values()):
            proc.terminate()
        # The workers are dead or dying, so the join is prompt; skipping
        # it leaves the pool's management thread to trip over closed
        # pipes at interpreter exit.
        executor.shutdown(wait=True, cancel_futures=True)

    def _execute(self, specs: Sequence[TaskSpec], out: Path
                 ) -> Tuple[Dict[str, TaskResult], int]:
        #: (spec, attempt, earliest wall time to launch)
        pending: List[Tuple[TaskSpec, int, float]] = [
            (spec, 1, 0.0) for spec in specs]
        running: Dict[Future, Tuple[TaskSpec, int, float]] = {}
        results: Dict[str, TaskResult] = {}
        retries = 0
        executor = self._new_executor()

        def fail_attempt(spec: TaskSpec, attempt: int, error: str) -> None:
            nonlocal retries
            if self.retry.exhausted(attempt):
                results[spec.task_id] = TaskResult(
                    spec=spec, status="failed", attempts=attempt,
                    error=error)
            else:
                retries += 1
                delay = self.retry.delay(attempt, key=spec.task_id)
                pending.append(
                    (spec, attempt + 1, time.monotonic() + delay))

        def settle_broken(spec: TaskSpec, attempt: int) -> None:
            # A dead worker poisons the pool: EVERY in-flight future
            # raises, and the culprit is indistinguishable from
            # collateral.  A task whose function actually completed
            # left its outcome.json behind, though — recover that
            # instead of charging it for a crash it didn't cause.
            outcome = self._recover_outcome(out, spec, attempt)
            if outcome is not None:
                status = "ok" if outcome.get("healthy") else "unhealthy"
                results[spec.task_id] = TaskResult(
                    spec=spec, status=status, attempts=attempt,
                    outcome=outcome)
            else:
                fail_attempt(spec, attempt,
                             "worker process died mid-task")

        try:
            while pending or running:
                now = time.monotonic()
                # Launch due work, keeping at most `workers` in flight
                # so the per-task timeout clock starts at true launch.
                due = [p for p in pending if p[2] <= now]
                due.sort(key=lambda p: (p[2], p[0].task_id))
                for item in due:
                    if len(running) >= self.workers:
                        break
                    pending.remove(item)
                    spec, attempt, _ = item
                    deadline = (now + self.task_timeout
                                if self.task_timeout else float("inf"))
                    future = executor.submit(
                        worker_mod.run_task, spec.to_dict(), str(out),
                        attempt, self.profile)
                    running[future] = (spec, attempt, deadline)

                if not running:
                    # Everything is backing off; sleep to the earliest.
                    wake = min(p[2] for p in pending)
                    time.sleep(max(0.0, min(wake - now,
                                            _MAX_IDLE_SLEEP)))
                    continue

                done, _ = wait(
                    list(running),
                    timeout=self._completion_wait_timeout(
                        pending, running, time.monotonic()),
                    return_when=FIRST_COMPLETED)
                pool_broken = False
                for future in done:
                    spec, attempt, _ = running.pop(future)
                    try:
                        outcome = future.result()
                    except BrokenProcessPool:
                        settle_broken(spec, attempt)
                        pool_broken = True
                    except Exception as exc:   # task raised in-worker
                        fail_attempt(
                            spec, attempt,
                            f"{type(exc).__name__}: {exc}")
                    else:
                        status = ("ok" if outcome.get("healthy")
                                  else "unhealthy")
                        results[spec.task_id] = TaskResult(
                            spec=spec, status=status, attempts=attempt,
                            outcome=outcome)
                if pool_broken:
                    # Anything still in flight died with the pool; give
                    # each the same recover-or-charge treatment and
                    # start a fresh pool.
                    for future, (spec, attempt, _) in list(running.items()):
                        running.pop(future)
                        settle_broken(spec, attempt)
                    self._kill_executor(executor)
                    executor = self._new_executor()
                    continue

                # Per-task timeouts: a stuck worker cannot be cancelled
                # through the executor API, so recycle the pool.
                if self.task_timeout is not None:
                    now = time.monotonic()
                    if any(dl <= now for _, _, dl in running.values()):
                        for future, (spec, attempt, dl) in \
                                list(running.items()):
                            running.pop(future)
                            if dl <= now:
                                fail_attempt(
                                    spec, attempt,
                                    f"task exceeded timeout of "
                                    f"{self.task_timeout:g}s")
                            else:
                                pending.append((spec, attempt, 0.0))
                        self._kill_executor(executor)
                        executor = self._new_executor()
        finally:
            executor.shutdown(wait=True, cancel_futures=True)
        return results, retries

    @staticmethod
    def _completion_wait_timeout(pending, running, now) -> Optional[float]:
        """How long the completion wait may block, or ``None`` for
        "until a future completes".

        The wait used to poll on a fixed 50 ms interval — a busy-spin
        whenever the pool was saturated with long tasks.  Blocking
        indefinitely is usually right (only a completion can free a
        slot), except for two wall-clock commitments that must be able
        to fire without one:

        * a backed-off retry whose wake time is still in the future —
          a *due* retry needs a free slot anyway, so it never bounds
          the wait (waking early for it would be the busy-spin again);
        * a running task's per-launch deadline (``task_timeout``).

        The bound is the earliest of those, floored at zero.
        """
        bounds = [wake for (_spec, _attempt, wake) in pending
                  if wake > now]
        bounds.extend(deadline for (_spec, _attempt, deadline)
                      in running.values()
                      if deadline != float("inf"))
        if not bounds:
            return None
        return max(0.0, min(bounds) - now)

    @staticmethod
    def _recover_outcome(out: Path, spec: TaskSpec, attempt: int
                         ) -> Optional[Dict[str, object]]:
        """The outcome a lost future would have returned, if the task
        function finished before its pool died (outcome.json is the
        worker's last write)."""
        path = out / spec.task_id / worker_mod.OUTCOME_FILENAME
        try:
            outcome = json.loads(path.read_text())
        except (OSError, ValueError):
            return None
        if outcome.get("attempts") != attempt:
            return None             # stale file from an earlier attempt
        return outcome

    # ------------------------------------------------------------------
    # aggregation — task-id order, simulation-derived values only
    # ------------------------------------------------------------------
    def _task_entry(self, result: TaskResult, out: Path
                    ) -> Dict[str, object]:
        if result.outcome is None:
            return {
                "task": result.spec.task_id,
                "kind": result.spec.kind,
                "seed": result.spec.seed,
                "status": "failed",
                "healthy": False,
                "attempts": result.attempts,
                "error": result.error,
            }
        entry = dict(result.outcome)
        if self.since is not None or self.until is not None:
            entry["events_in_window"] = self._count_in_window(
                out / result.spec.task_id / worker_mod.TRACE_FILENAME)
        return entry

    def _count_in_window(self, trace_path: Path) -> int:
        """Events in the half-open window ``[since, until)`` — the
        same :func:`~repro.obs.stats.event_in_window` predicate as
        ``repro stats`` / ``report`` / ``timeline``."""
        if not trace_path.exists():
            return 0
        return sum(1 for event in read_jsonl(str(trace_path))
                   if event_in_window(event, self.since, self.until))

    def _write_aggregate(self, ordered: List[TaskResult], out: Path
                         ) -> Path:
        counts = {"tasks": len(ordered), "ok": 0, "unhealthy": 0,
                  "failed": 0}
        for t in ordered:
            counts[t.status] += 1
        aggregate = {
            "kind": "repro.sweep",
            "window": {"since": self.since, "until": self.until},
            "counts": counts,
            "healthy": counts["ok"] == counts["tasks"],
            "tasks": [self._task_entry(t, out) for t in ordered],
        }
        path = out / AGGREGATE_FILENAME
        path.write_text(json.dumps(aggregate, indent=2, sort_keys=True)
                        + "\n")
        return path

    @staticmethod
    def _write_merged_trace(ordered: List[TaskResult], out: Path) -> Path:
        """Concatenate per-task traces in task-id order, with a
        ``sweep.task`` boundary event ahead of each run so the
        invariant suite resets between tasks.  Failed tasks are
        skipped (their last attempt's trace may be truncated
        mid-flight); they are accounted for in the aggregate instead.
        """
        path = out / MERGED_TRACE_FILENAME
        with open(path, "w", encoding="utf-8") as fh:
            for result in ordered:
                if result.status == "failed":
                    continue
                boundary = {"kind": SWEEP_BOUNDARY_KIND, "t": 0.0,
                            "task": result.spec.task_id}
                fh.write(json.dumps(boundary, sort_keys=True,
                                    separators=(",", ":")) + "\n")
                trace = (out / result.spec.task_id
                         / worker_mod.TRACE_FILENAME)
                if trace.exists():
                    fh.write(trace.read_text(encoding="utf-8"))
        return path

    @staticmethod
    def _write_profile_rollup(ordered: List[TaskResult], out: Path
                              ) -> Path:
        """Aggregate the per-task ``profile.json`` documents by task id
        into a sweep-level ``repro.profile`` document: each task's
        frame tree becomes a child named by its task id, and the flat
        hotspot maps are summed across tasks — so ``repro profile``
        reads the rollup directly.  Wall-clock data: quarantined from
        the deterministic surface, like ``run_info.json``."""
        flat: Dict[str, Dict[str, float]] = {}
        children: List[Dict[str, object]] = []
        per_task: Dict[str, Dict[str, object]] = {}
        total_wall = total_sim = 0.0
        for result in ordered:
            p = (out / result.spec.task_id
                 / worker_mod.PROFILE_FILENAME)
            try:
                doc = json.loads(p.read_text(encoding="utf-8"))
            except (OSError, ValueError):
                continue              # failed task: no profile to fold in
            if not isinstance(doc, dict) \
                    or doc.get("kind") != "repro.profile":
                continue
            wall = float(doc.get("total_wall_s") or 0.0)
            sim = float(doc.get("total_sim_s") or 0.0)
            total_wall += wall
            total_sim += sim
            per_task[result.spec.task_id] = {
                "total_wall_s": wall, "total_sim_s": sim}
            root = dict(doc.get("root") or {})
            root["name"] = result.spec.task_id
            children.append(root)
            for name, agg in sorted((doc.get("flat") or {}).items()):
                slot = flat.setdefault(name, {
                    "calls": 0, "wall_s": 0.0, "self_s": 0.0,
                    "sim_s": 0.0})
                for key in slot:
                    slot[key] += agg.get(key, 0)
        rollup = {
            "kind": "repro.profile",
            "version": 1,
            "command": "sweep",
            "total_wall_s": total_wall,
            "total_sim_s": total_sim,
            "unattributed_s": 0.0,
            "root": {"name": "run", "calls": len(children),
                     "wall_s": total_wall, "self_s": 0.0,
                     "sim_s": 0.0, "children": children},
            "flat": flat,
            "per_task": per_task,
        }
        path = out / PROFILE_ROLLUP_FILENAME
        path.write_text(json.dumps(rollup, indent=2, sort_keys=True)
                        + "\n")
        return path

    @staticmethod
    def _write_analytics_rollup(ordered: List[TaskResult], out: Path
                                ) -> Optional[Path]:
        """Merge the per-task ``analytics.json`` documents (written by
        the worker from each task's own trace) into one
        ``repro.analytics.rollup``, keyed and ordered **by task id**
        so the bytes never depend on the worker count.  Tasks without
        a document (failed, or zero-event traces) are skipped; with no
        documents at all, no rollup is written."""
        docs = {}
        for result in ordered:
            p = (out / result.spec.task_id
                 / worker_mod.ANALYTICS_FILENAME)
            if not p.exists():
                continue
            try:
                docs[result.spec.task_id] = load_analytics(str(p))
            except AnalyticsError:
                continue          # half-written file from a dead worker
        if not docs:
            return None
        rollup = merge_analytics(docs)
        path = out / ANALYTICS_ROLLUP_FILENAME
        dump_analytics(rollup, str(path))
        return path


# ----------------------------------------------------------------------
# reporting
# ----------------------------------------------------------------------
def render_sweep_report(result: SweepResult) -> str:
    """Human-readable sweep summary (the ``repro sweep`` stdout)."""
    counts = result.counts
    lines = [
        "# sweep report",
        "",
        f"- tasks: {counts['tasks']} "
        f"(ok {counts['ok']}, unhealthy {counts['unhealthy']}, "
        f"failed {counts['failed']})",
        f"- workers: {result.workers}; wall {result.wall_seconds:.1f} s; "
        f"retries {result.retries}",
        f"- aggregate: {result.aggregate_path}",
        f"- merged trace: {result.merged_trace_path}",
    ]
    if result.analytics_rollup_path is not None:
        lines.append(
            f"- analytics rollup: {result.analytics_rollup_path}")
    lines += [
        "",
        "| task | kind | seed | status | attempts | events | violations |",
        "| --- | --- | --- | --- | --- | --- | --- |",
    ]
    for t in result.tasks:
        events = "-" if t.outcome is None else t.outcome.get("events", 0)
        viol = ("-" if t.outcome is None
                else t.outcome.get("violation_count", 0))
        lines.append(
            f"| {t.spec.task_id} | {t.spec.kind} | {t.spec.seed} "
            f"| {t.status} | {t.attempts} | {events} | {viol} |")
    problems = [t for t in result.tasks if not t.healthy]
    if problems:
        lines += ["", "## problems", ""]
        for t in problems:
            if t.status == "failed":
                lines.append(f"- {t.spec.task_id}: FAILED after "
                             f"{t.attempts} attempt(s): {t.error}")
            else:
                detail = []
                if t.outcome and t.outcome.get("violation_count"):
                    detail.append(
                        f"{t.outcome['violation_count']} invariant "
                        f"violation(s)")
                lines.append(f"- {t.spec.task_id}: unhealthy"
                             + (f" ({'; '.join(detail)})" if detail
                                else ""))
    verdict = "OK" if result.ok else "DEGRADED"
    lines += ["", f"verdict: **{verdict}**"]
    return "\n".join(lines)
